//! A dependency-free future runtime: a bounded, channel-based worker pool
//! plus the minimal executor machinery needed to drive [`PoolFuture`]s —
//! [`block_on`] for single futures, [`Executor`] for many, and
//! [`join_all`] to gather a batch.
//!
//! The build environment has no crates.io, so there is no tokio here: the
//! pool is `std::sync::mpsc::sync_channel` + worker threads, and wakers
//! are built safely from [`std::task::Wake`] (no unsafe `RawWaker`
//! vtables — the crate forbids unsafe code).
//!
//! Backpressure is explicit: the submission queue is bounded, and a full
//! queue fails fast with [`SubmitError::Busy`] instead of growing without
//! bound. A scheduler event loop that sees `Busy` should resolve some of
//! its in-flight futures (or shed load) before submitting more.

use std::future::Future;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};
use std::thread::{JoinHandle, Thread};

use crate::future::{LateOutcome, PoolFuture, Promise};

/// Submission failure of the async front end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded submission queue is full — backpressure. Resolve some
    /// in-flight futures (e.g. [`PoolFuture::wait`]) and retry.
    Busy,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Busy => write!(f, "submission queue is full"),
        }
    }
}

impl std::error::Error for SubmitError {}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of worker threads fed from a bounded channel.
///
/// Jobs are opaque closures; the estimation service pairs each with a
/// [`Promise`](crate::future::Promise) so completion flows back through
/// the matching future. Dropping the pool closes the channel and joins
/// every worker (queued jobs still run to completion first).
///
/// The pool is **panic-resilient**: a job that unwinds is caught at the
/// worker loop, so the pool stays at full strength no matter what the
/// workload throws. Promise-settling jobs submitted through
/// [`try_execute_settling`](Self::try_execute_settling) additionally
/// resolve their future to [`LateOutcome::internal`] carrying the panic
/// payload, so no caller is ever stranded on an unsettled future.
#[derive(Debug)]
pub struct WorkerPool {
    sender: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
    /// Panics that unwound out of a job and were caught by the worker
    /// loop (settling jobs catch their own, so they don't count here).
    panics: Arc<AtomicU64>,
}

impl WorkerPool {
    /// A pool of `threads` workers behind a queue holding at most
    /// `queue_depth` not-yet-claimed jobs. Both are clamped to at least 1.
    #[must_use]
    pub fn new(threads: usize, queue_depth: usize) -> Self {
        let threads = threads.max(1);
        let (sender, receiver) = mpsc::sync_channel::<Job>(queue_depth.max(1));
        let receiver = Arc::new(Mutex::new(receiver));
        let panics = Arc::new(AtomicU64::new(0));
        let workers = (0..threads)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                let panics = Arc::clone(&panics);
                std::thread::Builder::new()
                    .name(format!("xmem-estimate-{i}"))
                    .spawn(move || loop {
                        // Hold the receiver lock only while dequeuing, so
                        // workers run jobs concurrently.
                        let job = receiver.lock().expect("pool receiver poisoned").recv();
                        match job {
                            // Catch unwinds so one panicking job cannot
                            // take a worker thread down with it.
                            Ok(job) => {
                                if catch_unwind(AssertUnwindSafe(job)).is_err() {
                                    panics.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            Err(_) => break, // channel closed: shut down
                        }
                    })
                    .expect("spawn estimation worker")
            })
            .collect();
        WorkerPool {
            sender: Some(sender),
            workers,
            panics,
        }
    }

    /// Number of worker threads.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Panics that unwound out of a raw [`try_execute`](Self::try_execute)
    /// job and were caught by the worker loop. Settling jobs convert
    /// their panics into [`LateOutcome::internal`] results instead, so
    /// they leave this counter alone.
    #[must_use]
    pub fn panics(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// Enqueues `job` without blocking.
    ///
    /// # Errors
    /// [`SubmitError::Busy`] when the queue is at capacity.
    pub fn try_execute(&self, job: Job) -> Result<(), SubmitError> {
        let sender = self.sender.as_ref().expect("pool sender lives until drop");
        match sender.try_send(job) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => Err(SubmitError::Busy),
        }
    }

    /// Enqueues `work` paired with `promise`: the worker claims the
    /// promise (skipping cancelled/expired queries without running them),
    /// runs `work`, and settles the promise with its output — or, if
    /// `work` panics, with [`LateOutcome::internal`] carrying the panic
    /// payload. Either way the matching future always settles and the
    /// worker thread survives.
    ///
    /// # Errors
    /// [`SubmitError::Busy`] when the queue is at capacity (the promise
    /// is dropped; its future never settles, matching a rejected
    /// submission).
    pub fn try_execute_settling<T, F>(
        &self,
        promise: Promise<T>,
        work: F,
    ) -> Result<(), SubmitError>
    where
        T: LateOutcome + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.try_execute(Box::new(move || {
            // A cancelled or expired query is settled here without ever
            // touching the profiler.
            if !promise.claim() {
                return;
            }
            match catch_unwind(AssertUnwindSafe(work)) {
                Ok(value) => {
                    promise.complete(value);
                }
                Err(payload) => {
                    promise.complete(T::internal(&panic_message(payload.as_ref())));
                }
            }
        }))
    }
}

/// Best-effort extraction of a printable panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "estimation job panicked with a non-string payload".to_string()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel lets each worker's recv() error out.
        drop(self.sender.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Wakes a parked [`block_on`] thread.
struct ThreadWaker(Thread);

impl Wake for ThreadWaker {
    fn wake(self: Arc<Self>) {
        self.0.unpark();
    }
}

/// Drives a single future to completion on the calling thread, parking
/// between polls. This is the bridge from synchronous scheduler code into
/// the async front end:
///
/// ```
/// use xmem_service::block_on;
///
/// let out = block_on(async { 2 + 2 });
/// assert_eq!(out, 4);
/// ```
pub fn block_on<F: Future>(future: F) -> F::Output {
    let mut future = std::pin::pin!(future);
    let waker = Waker::from(Arc::new(ThreadWaker(std::thread::current())));
    let mut cx = Context::from_waker(&waker);
    loop {
        match future.as_mut().poll(&mut cx) {
            Poll::Ready(output) => return output,
            Poll::Pending => std::thread::park(),
        }
    }
}

type BoxedTaskFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

/// One spawned task: its future plus the run-queue handle its waker
/// re-enqueues it on.
struct Task {
    future: Mutex<Option<BoxedTaskFuture>>,
    run_queue: Sender<Arc<Task>>,
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        // A send can only fail after the executor (and its receiver) is
        // gone, at which point the wake-up has nothing left to do.
        let _ = self.run_queue.send(Arc::clone(&self));
    }
}

/// A minimal single-threaded task executor: [`spawn`](Executor::spawn)
/// tasks, then [`run`](Executor::run) until all of them complete.
///
/// Tasks re-enqueue themselves onto a run queue when woken (the classic
/// hand-rolled design), so the executor sleeps while every task waits on
/// the worker pool and wakes exactly when completions arrive. This is the
/// event-loop shape a cluster scheduler embeds: submit an estimation
/// query per pending job, spawn a task per future, run.
///
/// ```
/// use xmem_service::Executor;
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
///
/// let executor = Executor::new();
/// let done = Arc::new(AtomicUsize::new(0));
/// for _ in 0..4 {
///     let done = Arc::clone(&done);
///     executor.spawn(async move {
///         done.fetch_add(1, Ordering::Relaxed);
///     });
/// }
/// executor.run();
/// assert_eq!(done.load(Ordering::Relaxed), 4);
/// ```
pub struct Executor {
    run_queue: Sender<Arc<Task>>,
    ready: Receiver<Arc<Task>>,
    /// Spawned-but-not-yet-completed task count.
    live: std::cell::Cell<usize>,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("live", &self.live.get())
            .finish_non_exhaustive()
    }
}

impl Default for Executor {
    fn default() -> Self {
        Executor::new()
    }
}

impl Executor {
    /// An executor with an empty task set.
    #[must_use]
    pub fn new() -> Self {
        let (run_queue, ready) = mpsc::channel();
        Executor {
            run_queue,
            ready,
            live: std::cell::Cell::new(0),
        }
    }

    /// Registers `future` as a task; it first runs inside
    /// [`run`](Executor::run).
    pub fn spawn<F: Future<Output = ()> + Send + 'static>(&self, future: F) {
        let task = Arc::new(Task {
            future: Mutex::new(Some(Box::pin(future))),
            run_queue: self.run_queue.clone(),
        });
        self.live.set(self.live.get() + 1);
        self.run_queue
            .send(task)
            .expect("executor holds the receiver");
    }

    /// Polls tasks until every spawned task has completed, sleeping while
    /// all of them are pending. Further tasks can be spawned and `run`
    /// called again; the executor is reusable.
    pub fn run(&self) {
        while self.live.get() > 0 {
            let task = self
                .ready
                .recv()
                .expect("executor holds a sender, the queue cannot close");
            let mut slot = task.future.lock().expect("task future poisoned");
            // A stale wake-up for an already-finished task finds no future.
            let Some(mut future) = slot.take() else {
                continue;
            };
            drop(slot);
            let waker = Waker::from(Arc::clone(&task));
            let mut cx = Context::from_waker(&waker);
            match future.as_mut().poll(&mut cx) {
                Poll::Ready(()) => self.live.set(self.live.get() - 1),
                Poll::Pending => {
                    *task.future.lock().expect("task future poisoned") = Some(future);
                }
            }
        }
    }
}

/// A future resolving to the outputs of `futures`, in input order, once
/// all of them settle. Hand-rolled `join_all`: polls only futures that
/// have not yet produced an output.
pub fn join_all<T: LateOutcome>(futures: Vec<PoolFuture<T>>) -> JoinAll<T> {
    let results = futures.iter().map(|_| None).collect();
    JoinAll { futures, results }
}

/// Future returned by [`join_all`].
#[derive(Debug)]
pub struct JoinAll<T: LateOutcome> {
    futures: Vec<PoolFuture<T>>,
    results: Vec<Option<T>>,
}

// No self-references: the futures and result slots are plain owned data,
// so moving a `JoinAll` between polls is fine.
impl<T: LateOutcome> Unpin for JoinAll<T> {}

impl<T: LateOutcome> Future for JoinAll<T> {
    type Output = Vec<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let mut pending = 0;
        for (future, slot) in this.futures.iter_mut().zip(this.results.iter_mut()) {
            if slot.is_some() {
                continue;
            }
            match Pin::new(&mut *future).poll(cx) {
                Poll::Ready(value) => *slot = Some(value),
                Poll::Pending => pending += 1,
            }
        }
        if pending > 0 {
            return Poll::Pending;
        }
        Poll::Ready(
            this.results
                .iter_mut()
                .map(|slot| slot.take().expect("all slots filled"))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::future::promise_pair;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;
    use xmem_core::EstimateError;

    #[test]
    fn pool_runs_jobs_concurrently() {
        let pool = WorkerPool::new(4, 16);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let done = Arc::clone(&done);
            pool.try_execute(Box::new(move || {
                done.fetch_add(1, Ordering::SeqCst);
            }))
            .expect("queue has room");
        }
        drop(pool); // joins workers, draining the queue
        assert_eq!(done.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn full_queue_reports_busy() {
        let pool = WorkerPool::new(1, 1);
        let (release_tx, release_rx) = mpsc::channel::<()>();
        // Occupy the single worker until released.
        pool.try_execute(Box::new(move || {
            release_rx.recv().ok();
        }))
        .expect("first job");
        // Fill the queue slot, then overflow. The worker may or may not
        // have dequeued the blocker yet, so allow one or two successes —
        // but a bounded queue must reject before the fourth.
        let mut accepted = 0;
        let mut busy = 0;
        for _ in 0..3 {
            match pool.try_execute(Box::new(|| {})) {
                Ok(()) => accepted += 1,
                Err(SubmitError::Busy) => busy += 1,
            }
        }
        assert!(busy >= 1, "bounded queue must push back ({accepted} fit)");
        release_tx.send(()).ok();
    }

    #[test]
    fn a_panicking_job_settles_its_promise_and_spares_the_worker() {
        // One worker: if the panic killed it, nothing after it would run.
        let pool = WorkerPool::new(1, 16);
        let (promise, future) = promise_pair::<Result<u32, EstimateError>>(None);
        pool.try_execute_settling(promise, || -> Result<u32, EstimateError> {
            panic!("injected profiler failure")
        })
        .expect("queue has room");
        assert_eq!(
            future.wait(),
            Err(EstimateError::Internal(
                "injected profiler failure".to_string()
            ))
        );
        // The pool still serves the next N queries at full strength.
        for i in 0..8u32 {
            let (promise, future) = promise_pair::<Result<u32, EstimateError>>(None);
            pool.try_execute_settling(promise, move || Ok(i))
                .expect("queue has room");
            assert_eq!(future.wait(), Ok(i));
        }
        assert_eq!(
            pool.panics(),
            0,
            "settling jobs catch their own panics before the worker loop"
        );
    }

    #[test]
    fn a_panicking_raw_job_is_caught_by_the_worker_loop() {
        let pool = WorkerPool::new(1, 16);
        pool.try_execute(Box::new(|| panic!("raw job blew up")))
            .expect("queue has room");
        // The same (sole) worker must still be alive to answer this.
        let (promise, future) = promise_pair::<Result<u32, EstimateError>>(None);
        pool.try_execute_settling(promise, || Ok(7))
            .expect("queue has room");
        assert_eq!(future.wait(), Ok(7));
        assert_eq!(pool.panics(), 1);
    }

    #[test]
    fn block_on_resolves_a_pool_future() {
        let (promise, future) = promise_pair::<Result<u32, EstimateError>>(None);
        let completer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            promise.complete(Ok(11));
        });
        assert_eq!(block_on(future), Ok(11));
        completer.join().expect("completer");
    }

    #[test]
    fn executor_drives_tasks_spawned_before_and_during_run() {
        let executor = Executor::new();
        let (promise, future) = promise_pair::<Result<u32, EstimateError>>(None);
        let seen = Arc::new(AtomicUsize::new(0));
        let seen_in_task = Arc::clone(&seen);
        executor.spawn(async move {
            let value = future.await.expect("completed");
            seen_in_task.fetch_add(value as usize, Ordering::SeqCst);
        });
        let completer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            promise.complete(Ok(5));
        });
        executor.run();
        completer.join().expect("completer");
        assert_eq!(seen.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn join_all_preserves_input_order() {
        let pairs: Vec<_> = (0..4)
            .map(|_| promise_pair::<Result<usize, EstimateError>>(None))
            .collect();
        let mut promises = Vec::new();
        let mut futures = Vec::new();
        for (p, f) in pairs {
            promises.push(p);
            futures.push(f);
        }
        // Complete in reverse order; outputs must still be in input order.
        let completer = std::thread::spawn(move || {
            for (i, promise) in promises.into_iter().enumerate().rev() {
                std::thread::sleep(Duration::from_millis(2));
                promise.complete(Ok(i));
            }
        });
        let outputs = block_on(join_all(futures));
        completer.join().expect("completer");
        assert_eq!(outputs, vec![Ok(0), Ok(1), Ok(2), Ok(3)]);
    }
}
