//! Negative caching: remember Analyzer failures for a TTL.
//!
//! Degenerate jobs (e.g. zero profiled iterations) fail in the Analyzer,
//! and failures are *not* stored in the positive stage cache — so before
//! this cache, every repeated query for a broken job re-ran the full CPU
//! profile just to fail again. Errors are deterministic in the job key,
//! so they are safe to memoize; the TTL bounds how long a transient
//! classification ("degenerate") is trusted before re-verification.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Monotonic counters for a [`NegativeCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NegativeStats {
    /// Lookups answered with a cached error.
    pub hits: u64,
    /// Errors written.
    pub insertions: u64,
    /// Entries dropped — TTL expiry or capacity eviction.
    pub evictions: u64,
}

#[derive(Debug)]
struct NegativeEntry<E> {
    error: E,
    cached_at: Instant,
}

/// A bounded, TTL'd map of `key → error`.
///
/// Entries expire `ttl` after insertion (checked lazily on lookup). When
/// full, inserting evicts the oldest entry — degenerate-job keys must not
/// grow the map without bound.
#[derive(Debug)]
pub struct NegativeCache<K, E> {
    entries: Mutex<HashMap<K, NegativeEntry<E>>>,
    ttl: Duration,
    capacity: usize,
    hits: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl<K: Hash + Eq + Clone, E: Clone> NegativeCache<K, E> {
    /// A cache of at most `capacity` errors (clamped to ≥ 1), each valid
    /// for `ttl` from insertion.
    #[must_use]
    pub fn new(ttl: Duration, capacity: usize) -> Self {
        NegativeCache {
            entries: Mutex::new(HashMap::new()),
            ttl,
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The configured TTL.
    #[must_use]
    pub fn ttl(&self) -> Duration {
        self.ttl
    }

    /// The cached error for `key`, if present and not expired.
    #[must_use]
    pub fn get(&self, key: &K) -> Option<E> {
        self.get_at(key, Instant::now())
    }

    /// Caches `error` for `key`.
    pub fn insert(&self, key: K, error: E) {
        self.insert_at(key, error, Instant::now());
    }

    /// Live (unexpired-at-last-touch) entry count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.lock().expect("negative cache poisoned").len()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the hit/insert/evict counters.
    #[must_use]
    pub fn stats(&self) -> NegativeStats {
        NegativeStats {
            hits: self.hits.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Clock-injected lookup; `get` passes `Instant::now`, tests pass a
    /// synthetic time.
    fn get_at(&self, key: &K, now: Instant) -> Option<E> {
        let mut entries = self.entries.lock().expect("negative cache poisoned");
        match entries.get(key) {
            Some(entry) if now.duration_since(entry.cached_at) < self.ttl => {
                let error = entry.error.clone();
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(error)
            }
            Some(_) => {
                entries.remove(key);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => None,
        }
    }

    /// Clock-injected insert. A zero TTL disables the cache entirely:
    /// nothing is stored (an entry would be born expired), so a disabled
    /// cache holds no dead entries and reports zero insertions.
    fn insert_at(&self, key: K, error: E, now: Instant) {
        if self.ttl.is_zero() {
            return;
        }
        let mut entries = self.entries.lock().expect("negative cache poisoned");
        if !entries.contains_key(&key) && entries.len() >= self.capacity {
            // Evict the stalest entry; expired entries go first naturally
            // since they have the oldest timestamps.
            if let Some(oldest) = entries
                .iter()
                .min_by_key(|(_, e)| e.cached_at)
                .map(|(k, _)| k.clone())
            {
                entries.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        entries.insert(
            key,
            NegativeEntry {
                error,
                cached_at: now,
            },
        );
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TTL: Duration = Duration::from_secs(60);

    #[test]
    fn caches_an_error_until_the_ttl() {
        let cache: NegativeCache<u32, &str> = NegativeCache::new(TTL, 8);
        let t0 = Instant::now();
        cache.insert_at(1, "degenerate", t0);
        assert_eq!(
            cache.get_at(&1, t0 + Duration::from_secs(59)),
            Some("degenerate")
        );
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn expired_entries_miss_and_are_evicted() {
        let cache: NegativeCache<u32, &str> = NegativeCache::new(TTL, 8);
        let t0 = Instant::now();
        cache.insert_at(1, "degenerate", t0);
        assert_eq!(cache.get_at(&1, t0 + TTL), None, "TTL is exclusive");
        let stats = cache.stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.evictions, 1);
        assert!(cache.is_empty());
    }

    #[test]
    fn reinsert_refreshes_the_ttl() {
        let cache: NegativeCache<u32, &str> = NegativeCache::new(TTL, 8);
        let t0 = Instant::now();
        cache.insert_at(1, "first", t0);
        cache.insert_at(1, "second", t0 + Duration::from_secs(30));
        assert_eq!(
            cache.get_at(&1, t0 + Duration::from_secs(80)),
            Some("second"),
            "TTL counts from the latest insertion"
        );
    }

    #[test]
    fn capacity_evicts_the_oldest_entry() {
        let cache: NegativeCache<u32, &str> = NegativeCache::new(TTL, 2);
        let t0 = Instant::now();
        cache.insert_at(1, "a", t0);
        cache.insert_at(2, "b", t0 + Duration::from_secs(1));
        cache.insert_at(3, "c", t0 + Duration::from_secs(2));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get_at(&1, t0 + Duration::from_secs(3)), None);
        assert_eq!(cache.get_at(&2, t0 + Duration::from_secs(3)), Some("b"));
        assert_eq!(cache.get_at(&3, t0 + Duration::from_secs(3)), Some("c"));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn zero_ttl_disables_negative_caching() {
        let cache: NegativeCache<u32, &str> = NegativeCache::new(Duration::ZERO, 8);
        let t0 = Instant::now();
        cache.insert_at(1, "a", t0);
        assert_eq!(cache.get_at(&1, t0), None);
        assert!(cache.is_empty(), "a disabled cache stores nothing");
        assert_eq!(cache.stats().insertions, 0, "and counts nothing");
    }
}
