//! Crash-consistent persistence for the service caches.
//!
//! Layout inside the state directory:
//!
//! - `snapshot.xmem` — a full dump of cache state, written atomically via
//!   `snapshot.xmem.tmp` + rename. The first frame is a version header; a
//!   snapshot whose header does not parse (or carries a different format
//!   version) is ignored wholesale.
//! - `journal.xmem` — an append-only log of inserts since the last
//!   snapshot, truncated after every successful snapshot rename.
//!
//! Both files are sequences of *frames*: `[u32 payload-len LE][u64
//! FNV-1a-64 checksum LE][JSON payload]`. On boot the reader walks each
//! file front to back and stops at the first frame that is short, fails
//! its checksum, or fails to decode — recovery always lands on the last
//! valid prefix and never errors (torn-tail tolerance). A crash between
//! the snapshot rename and the journal truncate merely replays journal
//! records that the snapshot already contains; replayed values are
//! deterministic, so the double-apply is idempotent.
//!
//! Journal appends are buffered writes without fsync — a power loss can
//! shed the unsynced tail, which the torn-tail reader absorbs. Snapshots
//! are fsynced before the rename (and the directory after it), so a
//! completed snapshot survives power loss.

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use serde::{Deserialize, Serialize};
use xmem_core::{AnalyzedTrace, Estimate, ParamReplay, UnboundedReplay};

use crate::key::{JobKey, SweepKey};
use crate::service::EstimationService;

/// On-disk format version; bumped on any incompatible layout change.
pub const STATE_FORMAT_VERSION: u32 = 1;

/// Snapshot file name inside the state directory.
pub const SNAPSHOT_FILE: &str = "snapshot.xmem";
/// Temp file the snapshot is staged in before the atomic rename.
pub const SNAPSHOT_TMP_FILE: &str = "snapshot.xmem.tmp";
/// Append-only journal file name inside the state directory.
pub const JOURNAL_FILE: &str = "journal.xmem";

/// Upper bound on a single frame payload; a corrupt length field larger
/// than this ends replay rather than triggering a huge allocation.
const MAX_FRAME_LEN: usize = 64 << 20;

/// FNV-1a 64-bit over `bytes` (the frame checksum).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325_u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// The snapshot header frame.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SnapshotHeader {
    format: String,
    version: u32,
}

/// A persisted device identity: [`crate::simcache::DeviceFingerprint`]
/// with the `&'static str` name made owned. Recovered sim cells are
/// re-attached by matching every field against the boot-time registry;
/// cells for devices no longer registered are skipped (counted).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) struct PersistedDevice {
    pub(crate) name: String,
    pub(crate) capacity: u64,
    pub(crate) framework_bytes: u64,
    pub(crate) init_bytes: u64,
}

/// One journal/snapshot record: a single cache insert.
///
/// Traces are deliberately excluded from `Stage` records — they are
/// re-derivable and dominate `approx_bytes`; a recovered stage entry
/// serves analysis-dependent paths with zero profile runs but carries
/// `trace: None`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) enum StateRecord {
    /// A stage-cache insert (analyzed trace only; raw trace excluded).
    Stage {
        job: JobKey,
        analyzed: AnalyzedTrace,
    },
    /// An unbounded-replay cache insert.
    Replay {
        job: JobKey,
        replay: UnboundedReplay,
    },
    /// A sim-shard cell insert for one device fingerprint.
    Sim {
        device: PersistedDevice,
        job: JobKey,
        estimate: Estimate,
    },
    /// A parameterized-replay (incremental sweep) fit for one job
    /// family. Exported after every other record kind so binaries that
    /// predate the variant still recover the full Stage/Replay/Sim
    /// prefix.
    Param {
        family: SweepKey,
        replay: ParamReplay,
    },
    /// The learned adaptive-tiering state of one cache tier (`"stage"`,
    /// `"replay"`, `"param"`, or `"sim"`): the mean learned protected
    /// fraction in permille and the frequency sketch's decay epoch.
    /// Integers only, so the record is bit-exact across round trips.
    /// Exported **last** — after `Param`, keeping the downgrade-tolerant
    /// prefix convention: binaries that predate the variant still
    /// recover every earlier record kind.
    Tuner {
        cache: String,
        frac_permille: u32,
        decay_epoch: u64,
    },
}

/// Counters and gauges describing persistence activity, surfaced through
/// [`EstimationService::persist_stats`] and `/metrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PersistStats {
    /// Whether a state directory is configured and usable.
    pub enabled: bool,
    /// Snapshots successfully written (temp-file + rename completed).
    pub snapshot_writes: u64,
    /// Journal records appended by this process.
    pub journal_records: u64,
    /// Journal records appended since the last snapshot (compaction debt).
    pub pending_records: u64,
    /// Cache entries recovered (snapshot + journal replay) at boot.
    pub recovered_entries: u64,
    /// Torn or corrupt tails detected during recovery (per file; a
    /// checksum-invalid snapshot header also counts once).
    pub recovery_truncated: u64,
    /// Valid records skipped at boot because their device fingerprint
    /// matched no registered device.
    pub recovery_skipped: u64,
    /// Size of the current snapshot file in bytes.
    pub snapshot_bytes: u64,
    /// Size of the current journal file in bytes.
    pub journal_bytes: u64,
}

/// Journal writer state guarded by one mutex: the append handle plus the
/// record count since the last snapshot.
#[derive(Debug)]
struct JournalHandle {
    file: File,
    pending: u64,
}

/// The persistence engine owned by an [`EstimationService`].
#[derive(Debug)]
pub(crate) struct Persister {
    dir: PathBuf,
    journal: Mutex<JournalHandle>,
    snapshot_writes: AtomicU64,
    journal_records: AtomicU64,
    recovered: AtomicU64,
    truncated: AtomicU64,
    skipped: AtomicU64,
    snapshot_bytes: AtomicU64,
    journal_bytes: AtomicU64,
}

/// Everything recovered from a state directory at boot (torn-tail counts
/// are already folded into the persister's `truncated` counter).
pub(crate) struct LoadedState {
    pub(crate) records: Vec<StateRecord>,
}

/// Frames `payload` into `out` as `[len][checksum][payload]`.
fn push_frame(out: &mut Vec<u8>, payload: &[u8]) {
    let len = u32::try_from(payload.len()).expect("frame payload exceeds u32");
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Walks the framed file at `path`, returning the decoded payloads of the
/// longest valid prefix and whether a torn/corrupt tail was dropped. A
/// missing file is an empty, un-torn prefix.
fn read_frames(path: &Path) -> (Vec<Vec<u8>>, bool) {
    let Ok(data) = fs::read(path) else {
        return (Vec::new(), false);
    };
    let mut frames = Vec::new();
    let mut off = 0usize;
    while off < data.len() {
        if data.len() - off < 12 {
            return (frames, true);
        }
        let len = u32::from_le_bytes(data[off..off + 4].try_into().expect("4 bytes")) as usize;
        let sum = u64::from_le_bytes(data[off + 4..off + 12].try_into().expect("8 bytes"));
        if len > MAX_FRAME_LEN || data.len() - off - 12 < len {
            return (frames, true);
        }
        let payload = &data[off + 12..off + 12 + len];
        if fnv1a64(payload) != sum {
            return (frames, true);
        }
        frames.push(payload.to_vec());
        off += 12 + len;
    }
    (frames, false)
}

/// Decodes frame payloads into records, stopping at the first payload
/// that is not valid UTF-8 JSON of a [`StateRecord`] (prefix semantics:
/// a decode failure ends replay exactly like a checksum failure).
fn decode_records(frames: Vec<Vec<u8>>, torn: &mut bool) -> Vec<StateRecord> {
    let mut records = Vec::with_capacity(frames.len());
    for payload in frames {
        let Ok(text) = std::str::from_utf8(&payload) else {
            *torn = true;
            break;
        };
        match serde_json::from_str::<StateRecord>(text) {
            Ok(rec) => records.push(rec),
            Err(_) => {
                *torn = true;
                break;
            }
        }
    }
    records
}

impl Persister {
    /// Opens (creating if needed) the state directory, recovers the valid
    /// record prefix from snapshot + journal, and readies the journal for
    /// appends. Only I/O failures on the directory or journal handle are
    /// errors — torn or corrupt state files never are.
    pub(crate) fn open(dir: &Path) -> std::io::Result<(Self, LoadedState)> {
        fs::create_dir_all(dir)?;
        let mut truncated = 0u64;
        let mut records = Vec::new();

        let (snap_frames, snap_torn) = read_frames(&dir.join(SNAPSHOT_FILE));
        if snap_torn {
            truncated += 1;
        }
        if !snap_frames.is_empty() {
            let mut frames = snap_frames.into_iter();
            let header = frames.next().expect("non-empty");
            let header_ok = std::str::from_utf8(&header)
                .ok()
                .and_then(|t| serde_json::from_str::<SnapshotHeader>(t).ok())
                .is_some_and(|h| h.format == "xmem-state" && h.version == STATE_FORMAT_VERSION);
            if header_ok {
                let mut torn = false;
                records = decode_records(frames.collect(), &mut torn);
                if torn {
                    truncated += 1;
                }
            } else {
                // Unknown header: the whole snapshot is unusable, but the
                // journal may still replay.
                truncated += 1;
            }
        }

        let (journal_frames, journal_torn) = read_frames(&dir.join(JOURNAL_FILE));
        if journal_torn {
            truncated += 1;
        }
        let mut torn = false;
        records.extend(decode_records(journal_frames, &mut torn));
        if torn {
            truncated += 1;
        }

        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join(JOURNAL_FILE))?;
        let journal_bytes = file.metadata().map(|m| m.len()).unwrap_or(0);
        let snapshot_bytes = fs::metadata(dir.join(SNAPSHOT_FILE))
            .map(|m| m.len())
            .unwrap_or(0);

        let persister = Persister {
            dir: dir.to_path_buf(),
            journal: Mutex::new(JournalHandle { file, pending: 0 }),
            snapshot_writes: AtomicU64::new(0),
            journal_records: AtomicU64::new(0),
            recovered: AtomicU64::new(0),
            truncated: AtomicU64::new(truncated),
            skipped: AtomicU64::new(0),
            snapshot_bytes: AtomicU64::new(snapshot_bytes),
            journal_bytes: AtomicU64::new(journal_bytes),
        };
        Ok((persister, LoadedState { records }))
    }

    /// Appends one record to the journal. Write errors are swallowed
    /// (persistence is best-effort between snapshots; the torn-tail
    /// reader absorbs a partial frame).
    pub(crate) fn append(&self, record: &StateRecord) {
        let Ok(json) = serde_json::to_string(record) else {
            return;
        };
        let mut frame = Vec::with_capacity(12 + json.len());
        push_frame(&mut frame, json.as_bytes());
        let mut guard = self
            .journal
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if guard.file.write_all(&frame).is_ok() {
            guard.pending += 1;
            self.journal_records.fetch_add(1, Ordering::Relaxed);
            self.journal_bytes
                .fetch_add(frame.len() as u64, Ordering::Relaxed);
        }
    }

    /// Writes a full snapshot of `records` atomically (temp file, fsync,
    /// rename, directory fsync), then truncates the journal. The journal
    /// lock is held across the whole sequence so no append can land
    /// between the rename and the truncate.
    pub(crate) fn snapshot(&self, records: &[StateRecord]) -> std::io::Result<()> {
        let mut buf = Vec::new();
        let header = SnapshotHeader {
            format: "xmem-state".to_owned(),
            version: STATE_FORMAT_VERSION,
        };
        let header_json = serde_json::to_string(&header)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        push_frame(&mut buf, header_json.as_bytes());
        for record in records {
            let json = serde_json::to_string(record)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
            push_frame(&mut buf, json.as_bytes());
        }

        let tmp_path = self.dir.join(SNAPSHOT_TMP_FILE);
        let final_path = self.dir.join(SNAPSHOT_FILE);

        let mut guard = self
            .journal
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        {
            let mut tmp = File::create(&tmp_path)?;
            tmp.write_all(&buf)?;
            tmp.sync_all()?;
        }
        fs::rename(&tmp_path, &final_path)?;
        // Durability of the rename itself: fsync the directory (best
        // effort — not all platforms allow opening a directory).
        if let Ok(dirf) = File::open(&self.dir) {
            let _ = dirf.sync_all();
        }
        guard.file.set_len(0)?;
        let _ = guard.file.sync_all();
        guard.pending = 0;
        drop(guard);

        self.snapshot_writes.fetch_add(1, Ordering::Relaxed);
        self.snapshot_bytes
            .store(buf.len() as u64, Ordering::Relaxed);
        self.journal_bytes.store(0, Ordering::Relaxed);
        Ok(())
    }

    /// Records `n` entries recovered at boot.
    pub(crate) fn add_recovered(&self, n: u64) {
        self.recovered.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` boot records skipped (unmatched device fingerprint).
    pub(crate) fn add_skipped(&self, n: u64) {
        self.skipped.fetch_add(n, Ordering::Relaxed);
    }

    /// Journal records appended since the last snapshot.
    pub(crate) fn pending(&self) -> u64 {
        self.journal
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pending
    }

    /// Point-in-time persistence counters/gauges.
    pub(crate) fn stats(&self) -> PersistStats {
        PersistStats {
            enabled: true,
            snapshot_writes: self.snapshot_writes.load(Ordering::Relaxed),
            journal_records: self.journal_records.load(Ordering::Relaxed),
            pending_records: self.pending(),
            recovered_entries: self.recovered.load(Ordering::Relaxed),
            recovery_truncated: self.truncated.load(Ordering::Relaxed),
            recovery_skipped: self.skipped.load(Ordering::Relaxed),
            snapshot_bytes: self.snapshot_bytes.load(Ordering::Relaxed),
            journal_bytes: self.journal_bytes.load(Ordering::Relaxed),
        }
    }
}

/// A background thread that periodically compacts the journal into a
/// fresh snapshot via [`EstimationService::snapshot_now`].
///
/// The thread wakes on `interval` (or on stop) and snapshots only when
/// journal records are pending, so an idle service performs no I/O.
/// Dropping the handle signals the thread and joins it; the final
/// drain-time snapshot is the owner's responsibility (the CLI writes one
/// after the server drains).
pub struct Snapshotter {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<JoinHandle<()>>,
}

impl Snapshotter {
    /// Spawns the snapshotter over `service`, compacting every `interval`.
    #[must_use]
    pub fn spawn(service: Arc<EstimationService>, interval: Duration) -> Self {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("xmem-snapshotter".to_owned())
            .spawn(move || {
                let (lock, cvar) = &*thread_stop;
                let mut stopped = lock
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                while !*stopped {
                    let (guard, _timeout) = cvar
                        .wait_timeout(stopped, interval)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    stopped = guard;
                    if *stopped {
                        break;
                    }
                    if service.persist_stats().pending_records > 0 {
                        if let Err(e) = service.snapshot_now() {
                            eprintln!("xmem-snapshotter: snapshot failed: {e}");
                        }
                    }
                }
            })
            .expect("spawn snapshotter thread");
        Snapshotter {
            stop,
            handle: Some(handle),
        }
    }

    /// Signals the thread and joins it.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        let (lock, cvar) = &*self.stop;
        *lock
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = true;
        cvar.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Snapshotter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Reference values for the 64-bit FNV-1a parameters.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        push_frame(&mut buf, b"hello");
        push_frame(&mut buf, b"");
        push_frame(&mut buf, b"world");
        let dir = std::env::temp_dir().join(format!("xmem-frame-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("frames.bin");
        fs::write(&path, &buf).unwrap();
        let (frames, torn) = read_frames(&path);
        assert!(!torn);
        assert_eq!(
            frames,
            vec![b"hello".to_vec(), Vec::new(), b"world".to_vec()]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_yields_valid_prefix() {
        let mut buf = Vec::new();
        push_frame(&mut buf, b"one");
        push_frame(&mut buf, b"two");
        let full = buf.len();
        push_frame(&mut buf, b"three");
        let dir = std::env::temp_dir().join(format!("xmem-torn-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("frames.bin");
        // Every truncation point inside the last frame leaves the first
        // two frames intact.
        for cut in full..buf.len() {
            fs::write(&path, &buf[..cut]).unwrap();
            let (frames, torn) = read_frames(&path);
            assert_eq!(torn, cut != full);
            assert_eq!(frames.len(), 2);
            assert_eq!(frames[0], b"one");
            assert_eq!(frames[1], b"two");
        }
        // A flipped payload byte fails the checksum and ends the prefix.
        let mut corrupt = buf.clone();
        corrupt[full + 12] ^= 0xff;
        fs::write(&path, &corrupt).unwrap();
        let (frames, torn) = read_frames(&path);
        assert!(torn);
        assert_eq!(frames.len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_empty_not_torn() {
        let (frames, torn) = read_frames(Path::new("/nonexistent/xmem-no-such-file"));
        assert!(frames.is_empty());
        assert!(!torn);
    }
}
