//! Hand-rolled shared-state futures for the async estimation front end.
//!
//! A [`PoolFuture`] is the caller half of a promise pair: the worker pool
//! holds the [`Promise`] and completes it when the computation finishes,
//! while the caller polls (or blocks on) the future. The shared state is a
//! `Mutex` + `Condvar` pair, so one future supports both consumption
//! styles — `async` polling from an executor and blocking [`wait`]
//! (`PoolFuture::wait`) from plain threads.
//!
//! Completion is **first-writer-wins**: whichever of the worker, a
//! [`cancel`](PoolFuture::cancel) call, or a deadline expiry settles the
//! state first decides the output, and every later completion attempt is a
//! no-op. This is what gives cancellation and per-query deadlines their
//! semantics — a cancelled or expired future resolves immediately with
//! the corresponding [`EstimateError`], even if the underlying computation
//! later runs to completion (its result still lands in the service cache;
//! only this future stops waiting for it).

use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Waker};
use std::time::Instant;
use xmem_core::EstimateError;

/// Values a [`PoolFuture`] can resolve to when the computation itself is
/// pre-empted: the type must be able to express "cancelled", "missed the
/// deadline", and "died mid-computation" outcomes fabricated without
/// (fully) running the computation.
pub trait LateOutcome: Clone + Send {
    /// The value a cancelled query resolves to.
    fn cancelled() -> Self;
    /// The value an expired query resolves to.
    fn deadline_exceeded() -> Self;
    /// The value a query resolves to when its computation panicked and
    /// the worker pool caught the unwind (`message` carries the panic
    /// payload when printable).
    fn internal(message: &str) -> Self;
}

impl<V: Clone + Send> LateOutcome for Result<V, EstimateError> {
    fn cancelled() -> Self {
        Err(EstimateError::Cancelled)
    }
    fn deadline_exceeded() -> Self {
        Err(EstimateError::DeadlineExceeded)
    }
    fn internal(message: &str) -> Self {
        Err(EstimateError::Internal(message.to_string()))
    }
}

/// Shared completion state between a [`Promise`] and its [`PoolFuture`]s.
#[derive(Debug)]
struct Shared<T> {
    state: Mutex<State<T>>,
    condvar: Condvar,
}

#[derive(Debug)]
struct State<T> {
    /// The settled output; `Some` exactly once, never unset.
    result: Option<T>,
    /// Wakers of pollers parked since the last completion check.
    wakers: Vec<Waker>,
    /// Set once a worker has started computing (used to report whether a
    /// cancellation pre-empted any work).
    started: bool,
}

impl<T: LateOutcome> Shared<T> {
    fn settle(&self, value: T) -> bool {
        self.settle_reporting_started(value).0
    }

    /// Settles atomically and reports `(took_effect, started)` — both read
    /// under one lock acquisition, so a concurrent worker claim cannot
    /// slip between the observation and the settlement.
    fn settle_reporting_started(&self, value: T) -> (bool, bool) {
        let mut state = self.state.lock().expect("future state poisoned");
        if state.result.is_some() {
            return (false, state.started);
        }
        let started = state.started;
        state.result = Some(value);
        let wakers = std::mem::take(&mut state.wakers);
        drop(state);
        self.condvar.notify_all();
        for waker in wakers {
            waker.wake();
        }
        (true, started)
    }
}

/// Creates a promise pair: the [`Promise`] settles the shared state, the
/// [`PoolFuture`] observes it. `deadline` bounds the query: once it
/// passes, any poll, wait, or worker-side claim resolves the future to
/// [`LateOutcome::deadline_exceeded`].
#[must_use]
pub fn promise_pair<T: LateOutcome>(deadline: Option<Instant>) -> (Promise<T>, PoolFuture<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            result: None,
            wakers: Vec::new(),
            started: false,
        }),
        condvar: Condvar::new(),
    });
    (
        Promise {
            shared: Arc::clone(&shared),
            deadline,
        },
        PoolFuture { shared, deadline },
    )
}

/// The completion half of a promise pair, held by the worker pool.
#[derive(Debug)]
pub struct Promise<T: LateOutcome> {
    shared: Arc<Shared<T>>,
    deadline: Option<Instant>,
}

impl<T: LateOutcome> Promise<T> {
    /// Worker-side admission check, called when the job is dequeued.
    /// Returns `false` — and settles the future accordingly — when the
    /// query was cancelled while queued or its deadline has passed;
    /// returns `true` after marking the computation started.
    pub fn claim(&self) -> bool {
        if self.expire_if_past_deadline() {
            return false;
        }
        let mut state = self.shared.state.lock().expect("future state poisoned");
        if state.result.is_some() {
            return false;
        }
        state.started = true;
        true
    }

    /// Settles the future with `value`. Returns `false` when the future
    /// was already settled (cancelled or expired first) — the value is
    /// discarded, first writer wins.
    pub fn complete(&self, value: T) -> bool {
        self.shared.settle(value)
    }

    fn expire_if_past_deadline(&self) -> bool {
        match self.deadline {
            Some(deadline) if Instant::now() >= deadline => {
                self.shared.settle(T::deadline_exceeded())
            }
            _ => false,
        }
    }
}

/// A future resolving to the output of a pooled estimation query.
///
/// Supports three consumption styles:
/// * `.await` / polling from an executor (see
///   [`block_on`](crate::block_on) and [`Executor`](crate::Executor));
/// * blocking [`wait`](Self::wait) from a plain thread;
/// * fire-and-forget with best-effort [`cancel`](Self::cancel).
///
/// Cloning is cheap and shares the same completion state; all clones
/// resolve to the same output.
#[derive(Debug, Clone)]
pub struct PoolFuture<T: LateOutcome> {
    shared: Arc<Shared<T>>,
    deadline: Option<Instant>,
}

impl<T: LateOutcome> PoolFuture<T> {
    /// Cancels the query: the future resolves to
    /// [`LateOutcome::cancelled`] unless it already settled. Returns
    /// `(took_effect, pre_empted_work)` — `took_effect` is `false` when a
    /// result (or an earlier cancellation/expiry) won the race;
    /// `pre_empted_work` is `true` when no worker had started the
    /// computation, i.e. the cancellation saved the entire profile run.
    /// The started-flag read and the settlement happen under one lock, so
    /// the report cannot race a concurrent worker claim.
    pub fn cancel(&self) -> (bool, bool) {
        let (took_effect, started) = self.shared.settle_reporting_started(T::cancelled());
        (took_effect, took_effect && !started)
    }

    /// Whether the future has settled (result, cancellation, or expiry).
    #[must_use]
    pub fn is_settled(&self) -> bool {
        self.shared
            .state
            .lock()
            .expect("future state poisoned")
            .result
            .is_some()
    }

    /// The query deadline, if one was set at submission.
    #[must_use]
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// A weak expiry handle for the deadline timer: it can settle the
    /// future at its due time but does not keep the completion state (or
    /// a settled result) alive.
    pub(crate) fn weak_expiry(&self) -> WeakExpiry<T> {
        WeakExpiry {
            shared: Arc::downgrade(&self.shared),
        }
    }

    /// Blocks the calling thread until the future settles and returns the
    /// output. Honors the deadline: an unsettled future resolves to
    /// [`LateOutcome::deadline_exceeded`] the moment it passes.
    #[must_use]
    pub fn wait(&self) -> T {
        let mut state = self.shared.state.lock().expect("future state poisoned");
        loop {
            if let Some(result) = &state.result {
                return result.clone();
            }
            match self.deadline {
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        drop(state);
                        self.shared.settle(T::deadline_exceeded());
                        return self
                            .shared
                            .state
                            .lock()
                            .expect("future state poisoned")
                            .result
                            .clone()
                            .expect("settle leaves a result");
                    }
                    let (next, _) = self
                        .shared
                        .condvar
                        .wait_timeout(state, deadline - now)
                        .expect("future state poisoned");
                    state = next;
                }
                None => {
                    state = self
                        .shared
                        .condvar
                        .wait(state)
                        .expect("future state poisoned");
                }
            }
        }
    }
}

/// The deadline timer's non-owning handle to a future's completion state
/// (see [`PoolFuture::weak_expiry`]): once every caller-side clone drops,
/// the state — and any settled result it holds — is freed regardless of
/// how far away the watched deadline is.
#[derive(Debug)]
pub(crate) struct WeakExpiry<T: LateOutcome> {
    shared: std::sync::Weak<Shared<T>>,
}

impl<T: LateOutcome> WeakExpiry<T> {
    /// Settles the future with [`LateOutcome::deadline_exceeded`] if it
    /// is still alive and unsettled.
    pub(crate) fn expire(&self) {
        if let Some(shared) = self.shared.upgrade() {
            shared.settle(T::deadline_exceeded());
        }
    }
}

impl<T: LateOutcome> Future for PoolFuture<T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut state = self.shared.state.lock().expect("future state poisoned");
        if let Some(result) = &state.result {
            return Poll::Ready(result.clone());
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                drop(state);
                self.shared.settle(T::deadline_exceeded());
                let state = self.shared.state.lock().expect("future state poisoned");
                return Poll::Ready(state.result.clone().expect("settle leaves a result"));
            }
        }
        // Register for the completion wake-up, replacing a stale clone of
        // this task's waker if it re-polled.
        let waker = cx.waker();
        if !state.wakers.iter().any(|w| w.will_wake(waker)) {
            state.wakers.push(waker.clone());
        }
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    type TestFuture = PoolFuture<Result<u64, EstimateError>>;
    type TestPromise = Promise<Result<u64, EstimateError>>;

    fn pair(deadline: Option<Instant>) -> (TestPromise, TestFuture) {
        promise_pair(deadline)
    }

    #[test]
    fn complete_then_wait_returns_the_value() {
        let (promise, future) = pair(None);
        assert!(promise.claim());
        assert!(promise.complete(Ok(42)));
        assert_eq!(future.wait(), Ok(42));
        assert!(future.is_settled());
    }

    #[test]
    fn cancel_wins_over_a_later_completion() {
        let (promise, future) = pair(None);
        let (took_effect, pre_empted) = future.cancel();
        assert!(took_effect);
        assert!(pre_empted, "no worker had claimed the job");
        assert!(!promise.claim(), "a cancelled job must not be claimed");
        assert!(!promise.complete(Ok(42)), "first writer wins");
        assert_eq!(future.wait(), Err(EstimateError::Cancelled));
    }

    #[test]
    fn cancel_after_completion_is_a_no_op() {
        let (promise, future) = pair(None);
        promise.complete(Ok(7));
        let (took_effect, _) = future.cancel();
        assert!(!took_effect);
        assert_eq!(future.wait(), Ok(7));
    }

    #[test]
    fn cancel_after_claim_reports_no_preempted_work() {
        let (promise, future) = pair(None);
        assert!(promise.claim());
        let (took_effect, pre_empted) = future.cancel();
        assert!(took_effect);
        assert!(!pre_empted, "the worker had already started");
        assert_eq!(future.wait(), Err(EstimateError::Cancelled));
    }

    #[test]
    fn past_deadline_expires_on_claim() {
        let (promise, future) = pair(Some(Instant::now() - Duration::from_millis(1)));
        assert!(!promise.claim());
        assert_eq!(future.wait(), Err(EstimateError::DeadlineExceeded));
    }

    #[test]
    fn wait_times_out_at_the_deadline_without_a_worker() {
        let (_promise, future) = pair(Some(Instant::now() + Duration::from_millis(20)));
        let started = Instant::now();
        assert_eq!(future.wait(), Err(EstimateError::DeadlineExceeded));
        assert!(started.elapsed() >= Duration::from_millis(19));
    }

    #[test]
    fn wait_from_another_thread_sees_the_completion() {
        let (promise, future) = pair(None);
        let waiter = std::thread::spawn(move || future.wait());
        std::thread::sleep(Duration::from_millis(10));
        assert!(promise.complete(Ok(99)));
        assert_eq!(waiter.join().expect("waiter"), Ok(99));
    }

    #[test]
    fn clones_share_the_completion() {
        let (promise, future) = pair(None);
        let other = future.clone();
        promise.complete(Ok(5));
        assert_eq!(future.wait(), Ok(5));
        assert_eq!(other.wait(), Ok(5));
    }
}
