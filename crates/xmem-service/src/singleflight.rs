//! Single-flight execution: coalesce concurrent computations of the same
//! key onto one leader.
//!
//! A thundering herd of identical admission checks — every pending job in
//! a scheduler queue asking about the same `(model, optimizer, batch)` —
//! must trigger exactly one CPU profile. The cache alone cannot guarantee
//! that: concurrent misses race past the lookup and each recompute. Here,
//! the first miss per key becomes the *leader* and runs the computation;
//! every concurrent caller for the same key becomes a *follower* and
//! blocks on the leader's result instead of recomputing.
//!
//! Leaders publish through the closure's own side effects first (the
//! service inserts into its cache inside the closure), so by the time a
//! flight is retired the cache already holds the value — a late caller
//! either joins the flight or hits the cache, never recomputes.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Monotonic counters for a [`SingleFlight`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlightStats {
    /// Computations actually executed (leader runs).
    pub executions: u64,
    /// Calls that waited on another caller's in-flight computation
    /// instead of executing their own.
    pub coalesced: u64,
}

#[derive(Debug)]
struct Flight<V> {
    outcome: Mutex<FlightOutcome<V>>,
    settled: Condvar,
}

#[derive(Debug)]
enum FlightOutcome<V> {
    Pending,
    Done(V),
    /// The leader unwound without publishing (a panic in the computation);
    /// followers must retry rather than wait forever.
    Abandoned,
}

/// Deduplicates concurrent computations per key. `V` is cloned to every
/// follower, so it should be cheap to clone (the service uses
/// `Result<Arc<_>, _>`).
#[derive(Debug)]
pub struct SingleFlight<K, V> {
    inflight: Mutex<HashMap<K, Arc<Flight<V>>>>,
    executions: AtomicU64,
    coalesced: AtomicU64,
}

impl<K: Hash + Eq + Clone, V: Clone> Default for SingleFlight<K, V> {
    fn default() -> Self {
        SingleFlight::new()
    }
}

/// Removes the flight entry when the leader unwinds without publishing,
/// and marks it abandoned so followers retry.
struct AbandonGuard<'a, K: Hash + Eq + Clone, V: Clone> {
    owner: &'a SingleFlight<K, V>,
    key: K,
    flight: Arc<Flight<V>>,
    armed: bool,
}

impl<K: Hash + Eq + Clone, V: Clone> Drop for AbandonGuard<'_, K, V> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        self.owner.retire(&self.key);
        *self.flight.outcome.lock().expect("flight poisoned") = FlightOutcome::Abandoned;
        self.flight.settled.notify_all();
    }
}

impl<K: Hash + Eq + Clone, V: Clone> SingleFlight<K, V> {
    /// An empty flight table.
    #[must_use]
    pub fn new() -> Self {
        SingleFlight {
            inflight: Mutex::new(HashMap::new()),
            executions: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        }
    }

    /// Runs `compute` for `key`, unless another caller is already running
    /// it — then blocks until that leader finishes and returns a clone of
    /// its result.
    ///
    /// `compute` runs outside the flight-table lock, so distinct keys
    /// execute fully in parallel. Side effects inside `compute` (cache
    /// population) are visible before any follower observes the result.
    pub fn run(&self, key: &K, compute: impl FnOnce() -> V) -> V {
        loop {
            let flight = {
                let mut inflight = self.inflight.lock().expect("flight table poisoned");
                match inflight.get(key) {
                    Some(flight) => Follower(Arc::clone(flight)),
                    None => {
                        let flight = Arc::new(Flight {
                            outcome: Mutex::new(FlightOutcome::Pending),
                            settled: Condvar::new(),
                        });
                        inflight.insert(key.clone(), Arc::clone(&flight));
                        Leader(flight)
                    }
                }
            };
            match flight {
                Leader(flight) => {
                    let mut guard = AbandonGuard {
                        owner: self,
                        key: key.clone(),
                        flight: Arc::clone(&flight),
                        armed: true,
                    };
                    let value = compute();
                    guard.armed = false;
                    drop(guard);
                    self.executions.fetch_add(1, Ordering::Relaxed);
                    // Publish, then retire the flight: late arrivals either
                    // join before retirement or find the closure's side
                    // effects (cache entry) afterwards.
                    *flight.outcome.lock().expect("flight poisoned") =
                        FlightOutcome::Done(value.clone());
                    flight.settled.notify_all();
                    self.retire(key);
                    return value;
                }
                Follower(flight) => {
                    let mut outcome = flight.outcome.lock().expect("flight poisoned");
                    loop {
                        match &*outcome {
                            FlightOutcome::Done(value) => {
                                self.coalesced.fetch_add(1, Ordering::Relaxed);
                                return value.clone();
                            }
                            FlightOutcome::Abandoned => break, // retry from the top
                            FlightOutcome::Pending => {
                                outcome = flight.settled.wait(outcome).expect("flight poisoned");
                            }
                        }
                    }
                }
            }
        }
    }

    fn retire(&self, key: &K) {
        self.inflight
            .lock()
            .expect("flight table poisoned")
            .remove(key);
    }

    /// Keys currently in flight.
    #[must_use]
    pub fn inflight_len(&self) -> usize {
        self.inflight.lock().expect("flight table poisoned").len()
    }

    /// A snapshot of the execution/coalescing counters.
    #[must_use]
    pub fn stats(&self) -> FlightStats {
        FlightStats {
            executions: self.executions.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
        }
    }
}

/// Role a caller takes for one key.
enum Role<V> {
    Leader(Arc<Flight<V>>),
    Follower(Arc<Flight<V>>),
}
use Role::{Follower, Leader};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;

    #[test]
    fn sequential_calls_each_execute() {
        let flights: SingleFlight<u32, u32> = SingleFlight::new();
        assert_eq!(flights.run(&1, || 10), 10);
        assert_eq!(flights.run(&1, || 11), 11, "no caching, only coalescing");
        let stats = flights.stats();
        assert_eq!(stats.executions, 2);
        assert_eq!(stats.coalesced, 0);
        assert_eq!(flights.inflight_len(), 0);
    }

    #[test]
    fn concurrent_same_key_executes_once() {
        const CALLERS: usize = 16;
        let flights: Arc<SingleFlight<u32, u32>> = Arc::new(SingleFlight::new());
        let runs = Arc::new(AtomicUsize::new(0));
        let gate = Arc::new(Barrier::new(CALLERS));
        let results: Vec<u32> = std::thread::scope(|scope| {
            (0..CALLERS)
                .map(|_| {
                    let flights = Arc::clone(&flights);
                    let runs = Arc::clone(&runs);
                    let gate = Arc::clone(&gate);
                    scope.spawn(move || {
                        gate.wait();
                        flights.run(&7, || {
                            runs.fetch_add(1, Ordering::SeqCst);
                            // Widen the window so followers pile up.
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            70
                        })
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("caller"))
                .collect()
        });
        assert!(results.iter().all(|&v| v == 70));
        assert_eq!(runs.load(Ordering::SeqCst), 1, "one leader only");
        let stats = flights.stats();
        assert_eq!(stats.executions, 1);
        assert_eq!(stats.coalesced as usize, CALLERS - 1);
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let flights: Arc<SingleFlight<u32, u32>> = Arc::new(SingleFlight::new());
        std::thread::scope(|scope| {
            for k in 0..4u32 {
                let flights = Arc::clone(&flights);
                scope.spawn(move || {
                    assert_eq!(flights.run(&k, move || k * 10), k * 10);
                });
            }
        });
        assert_eq!(flights.stats().executions, 4);
    }

    #[test]
    fn panicking_leader_does_not_strand_followers() {
        let flights: Arc<SingleFlight<u32, u32>> = Arc::new(SingleFlight::new());
        let gate = Arc::new(Barrier::new(2));
        std::thread::scope(|scope| {
            let leader = {
                let flights = Arc::clone(&flights);
                let gate = Arc::clone(&gate);
                scope.spawn(move || {
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        flights.run(&9, || {
                            gate.wait();
                            std::thread::sleep(std::time::Duration::from_millis(10));
                            panic!("profiler blew up")
                        })
                    }));
                    assert!(result.is_err());
                })
            };
            let follower = {
                let flights = Arc::clone(&flights);
                let gate = Arc::clone(&gate);
                scope.spawn(move || {
                    gate.wait();
                    // The abandoned flight must fall through to a retry
                    // that executes the computation itself.
                    assert_eq!(flights.run(&9, || 90), 90);
                })
            };
            leader.join().expect("leader");
            follower.join().expect("follower");
        });
        assert_eq!(flights.inflight_len(), 0);
    }
}
