//! Per-device simulation shards.
//!
//! The pipeline's back half — orchestration + allocator simulation — is
//! device-dependent: the same cached analysis replays differently against
//! every capacity/overhead configuration. The multi-device front end
//! therefore keeps **one simulation LRU per device configuration**: a
//! shard map keyed by the device's [`DeviceFingerprint`], each shard an
//! independently sized [`ShardedLruCache`] from [`JobKey`] to the cell's
//! [`Estimate`]. Sharding per device is what makes invalidation surgical:
//! when a device's configuration changes, only that configuration's shard
//! is dropped — every other device keeps its warm entries.
//!
//! Two growth bounds apply. Each shard's *entry* population is LRU-bounded
//! by construction; the shard map itself is bounded by a **fleet cap**
//! ([`SimShards::with_max_devices`]): registries churned programmatically
//! (one fingerprint per reconfiguration) would otherwise grow the map
//! without limit, so the least-recently-used device shard is retired once
//! the cap is reached, its counter history folded into the monotonic
//! [`stats`](SimShards::stats).
//!
//! The layer also carries the **pressure-aware replay counters**: how many
//! cells were derived from a cached unbounded replay
//! ([`SimStats::fast_path_hits`]) versus paid for with a full stateful
//! replay ([`SimStats::full_replays`]), and how many unbounded replays
//! were executed to seed the fast path.

use crate::cache::{CacheStats, ShardedLruCache};
use crate::key::JobKey;
use crate::tiering::{TierStats, TieringMode};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use xmem_core::Estimate;
use xmem_runtime::GpuDevice;

/// The simulation-relevant identity of a device configuration.
///
/// Two [`GpuDevice`]s with equal fingerprints produce bit-identical
/// simulations for any analysis, so they may share one simulation shard;
/// changing any field yields a new fingerprint — and therefore a cold
/// shard — which is how stale entries become unreachable the moment a
/// device is reconfigured.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DeviceFingerprint {
    /// Marketing name (part of identity: two models with coincidentally
    /// equal sizes still simulate as distinct fleet entries).
    pub name: &'static str,
    /// Total memory capacity in bytes.
    pub capacity: u64,
    /// Framework + CUDA-context overhead in bytes.
    pub framework_bytes: u64,
    /// Memory used by other tenants in bytes.
    pub init_bytes: u64,
}

impl DeviceFingerprint {
    /// The fingerprint of `device`.
    #[must_use]
    pub fn of(device: &GpuDevice) -> Self {
        // Exhaustive destructuring: a future simulation-relevant
        // GpuDevice field breaks this line instead of being silently
        // excluded from cache identity.
        let GpuDevice {
            name,
            capacity,
            framework_bytes,
            init_bytes,
        } = *device;
        DeviceFingerprint {
            name,
            capacity,
            framework_bytes,
            init_bytes,
        }
    }
}

/// Counters of the per-device simulation layer, alongside the analysis
/// cache's [`CacheStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Aggregated hit/miss/insert/evict counters over every device shard.
    pub cache: CacheStats,
    /// Allocator simulations actually executed — the ground truth the
    /// matrix layer is judged against: a full M × D matrix costs exactly
    /// M analyses and M × D simulations. Every simulation is served by
    /// derivation (`fast_path_hits`), by a full stateful replay
    /// (`full_replays`), or by the incremental sweep
    /// (`incremental_cells`); the three always sum to `sim_runs`.
    pub sim_runs: u64,
    /// Cells derived in O(1) from a cached unbounded replay (the
    /// pressure-aware fast path) — no event sequence was re-walked.
    pub fast_path_hits: u64,
    /// Cells that paid a full stateful replay: the device was
    /// capacity-pressured (reclaim/OOM could diverge), the configuration
    /// was fast-path-inexact, or the fast path was disabled.
    pub full_replays: u64,
    /// Cells served by the incremental sweep path: materialized from a
    /// cached parameterized replay instead of a per-batch profile +
    /// orchestration, then derived in O(1) or replayed as a dense event
    /// buffer.
    pub incremental_cells: u64,
    /// Parameterized-replay fits performed (one per job family × batch
    /// range; each costs the three anchor profiles counted by
    /// `profile_runs`).
    pub param_replays: u64,
    /// Unbounded replays executed to seed the fast path (at most one per
    /// job key covered by the replay cache).
    pub unbounded_replays: u64,
    /// Live device shards (distinct device configurations simulated so
    /// far).
    pub device_shards: usize,
    /// Cached estimates dropped because their device configuration was
    /// replaced ([`invalidate`](SimShards::invalidate)).
    pub invalidated_entries: u64,
    /// Whole device shards retired by the fleet cap
    /// ([`with_max_devices`](SimShards::with_max_devices)); their counter
    /// history stays folded into `cache`.
    pub evicted_shards: u64,
}

/// One live device shard plus its recency stamp for the fleet cap.
#[derive(Debug)]
struct ShardSlot {
    cache: Arc<ShardedLruCache<JobKey, Estimate>>,
    /// Last-use tick (from [`SimShards::clock`]); the minimum across
    /// slots is the fleet-cap eviction victim.
    last_use: AtomicU64,
}

/// The shard map: one simulation LRU per device fingerprint.
///
/// Shards are created on first use and sized identically (capacity and
/// lock-shard count are fixed at construction). Lookups take a read lock
/// on the map — only shard *creation*, fleet-cap eviction and
/// invalidation write-lock it.
#[derive(Debug)]
pub struct SimShards {
    shards: RwLock<HashMap<DeviceFingerprint, ShardSlot>>,
    /// Per-shard entry capacity.
    capacity: usize,
    /// Lock shards inside each per-device LRU.
    lock_shards: usize,
    /// Maximum live device shards; the LRU shard is retired beyond it.
    max_devices: usize,
    /// Tiering discipline applied to every per-device LRU (the service
    /// threads its configured mode through, so sim shards share the
    /// adaptive tuner machinery of the other cache tiers).
    tiering: TieringMode,
    /// Learned tuner state restored from a persisted snapshot — also the
    /// seed for device shards created *after* the restore, so a warm
    /// boot's learned split applies to the whole fleet.
    restored: Mutex<Option<(u32, u64)>>,
    /// Recency clock for the fleet cap.
    clock: AtomicU64,
    runs: AtomicU64,
    fast_path: AtomicU64,
    full_replays: AtomicU64,
    incremental: AtomicU64,
    param_fits: AtomicU64,
    unbounded: AtomicU64,
    invalidated: AtomicU64,
    evicted_shards: AtomicU64,
    /// Counter history of retired shards (invalidated or fleet-evicted),
    /// folded in so [`stats`](Self::stats) stays **monotonic**: dropping
    /// a shard must not make previously reported hits/misses vanish
    /// (delta-based monitoring would see negative rates).
    retired: RwLock<CacheStats>,
}

impl SimShards {
    /// An empty shard map whose per-device LRUs hold `capacity` entries
    /// over `lock_shards` locks each. The fleet size is unbounded until
    /// [`with_max_devices`](Self::with_max_devices) caps it.
    #[must_use]
    pub fn new(capacity: usize, lock_shards: usize) -> Self {
        SimShards {
            shards: RwLock::new(HashMap::new()),
            capacity,
            lock_shards,
            max_devices: usize::MAX,
            tiering: TieringMode::Off,
            restored: Mutex::new(None),
            clock: AtomicU64::new(0),
            runs: AtomicU64::new(0),
            fast_path: AtomicU64::new(0),
            full_replays: AtomicU64::new(0),
            incremental: AtomicU64::new(0),
            param_fits: AtomicU64::new(0),
            unbounded: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
            evicted_shards: AtomicU64::new(0),
            retired: RwLock::new(CacheStats::default()),
        }
    }

    /// Caps the number of live device shards at `max_devices` (clamped to
    /// at least 1): creating a shard past the cap retires the
    /// least-recently-used one, folding its counters into the monotonic
    /// history.
    ///
    /// Retirement folds a *snapshot*: a counter bump landing on a
    /// still-held [`Arc`] handle in the instants between the snapshot and
    /// the handle being dropped is not re-folded. Writers therefore
    /// re-fetch the shard right before inserting (see the service's
    /// `simulate_on`); the service-level counters (`sim_runs`, fast-path
    /// split) live on `SimShards` itself and are never affected.
    #[must_use]
    pub fn with_max_devices(mut self, max_devices: usize) -> Self {
        self.max_devices = max_devices.max(1);
        self
    }

    /// The configured fleet cap (`usize::MAX` when unbounded).
    #[must_use]
    pub fn max_devices(&self) -> usize {
        self.max_devices
    }

    /// Applies a [`TieringMode`] to every per-device LRU (existing and
    /// future): the sim shards run the same plain/static/adaptive
    /// discipline as the service's other cache tiers. Defaults to
    /// [`TieringMode::Off`].
    #[must_use]
    pub fn with_tiering(mut self, mode: TieringMode) -> Self {
        self.tiering = mode;
        self
    }

    /// The simulation LRU for `device`, created on first use (retiring
    /// the least-recently-used shard when the fleet cap is hit).
    #[must_use]
    pub fn shard(&self, device: &GpuDevice) -> Arc<ShardedLruCache<JobKey, Estimate>> {
        let fingerprint = DeviceFingerprint::of(device);
        let tick = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(slot) = self
            .shards
            .read()
            .expect("sim shard map poisoned")
            .get(&fingerprint)
        {
            slot.last_use.store(tick, Ordering::Relaxed);
            return Arc::clone(&slot.cache);
        }
        let mut shards = self.shards.write().expect("sim shard map poisoned");
        if let Some(slot) = shards.get(&fingerprint) {
            // Raced another creator between the read and write locks.
            slot.last_use.store(tick, Ordering::Relaxed);
            return Arc::clone(&slot.cache);
        }
        // Fleet cap: retire the least-recently-used shard. The map is
        // bounded by the (small) cap, so this scan is cheap and only runs
        // on shard *creation*, never on the per-query path.
        while shards.len() >= self.max_devices {
            let victim = shards
                .iter()
                .min_by_key(|(_, slot)| slot.last_use.load(Ordering::Relaxed))
                .map(|(fp, _)| fp.clone())
                .expect("non-empty map above the cap");
            if let Some(slot) = shards.remove(&victim) {
                self.retire(&slot.cache);
                self.evicted_shards.fetch_add(1, Ordering::Relaxed);
            }
        }
        let slot = shards.entry(fingerprint).or_insert_with(|| {
            let cache =
                ShardedLruCache::new(self.capacity, self.lock_shards).with_tiering(self.tiering);
            // New shards join the fleet at the learned split, not the
            // initial fraction, once a restore has happened.
            if let Some((permille, epoch)) = *self.restored.lock().expect("restore seed poisoned") {
                cache.restore_learned_state(permille, epoch);
            }
            ShardSlot {
                cache: Arc::new(cache),
                last_use: AtomicU64::new(tick),
            }
        });
        Arc::clone(&slot.cache)
    }

    /// The aggregated learned tuner state over the fleet — the mean
    /// learned protected fraction (permille) across live device shards
    /// and the maximum sketch decay epoch — or `None` when the sim tier
    /// is not adaptive. With no live shards, falls back to the restored
    /// (or initial) state so the persisted record never regresses.
    #[must_use]
    pub fn learned_state(&self) -> Option<(u32, u64)> {
        let TieringMode::Adaptive { initial_frac } = self.tiering else {
            return None;
        };
        let shards = self.shards.read().expect("sim shard map poisoned");
        let mut permille_sum: u64 = 0;
        let mut counted: u64 = 0;
        let mut epoch: u64 = 0;
        for slot in shards.values() {
            if let Some((permille, shard_epoch)) = slot.cache.learned_state() {
                permille_sum += u64::from(permille);
                counted += 1;
                epoch = epoch.max(shard_epoch);
            }
        }
        if let Some(mean) = permille_sum.checked_div(counted) {
            #[allow(clippy::cast_possible_truncation)]
            return Some((mean as u32, epoch));
        }
        if let Some(state) = *self.restored.lock().expect("restore seed poisoned") {
            return Some(state);
        }
        Some((crate::tiering::permille_from_frac(initial_frac, true), 0))
    }

    /// Seeds every live device shard — and, via the remembered seed,
    /// every future one — with a persisted learned fraction and sketch
    /// decay epoch. A no-op unless the sim tier is adaptive.
    pub fn restore_learned_state(&self, frac_permille: u32, decay_epoch: u64) {
        if !matches!(self.tiering, TieringMode::Adaptive { .. }) {
            return;
        }
        let clamped = frac_permille.clamp(
            crate::tiering::FRAC_FLOOR_PERMILLE,
            crate::tiering::FRAC_CEIL_PERMILLE,
        );
        *self.restored.lock().expect("restore seed poisoned") = Some((clamped, decay_epoch));
        let shards = self.shards.read().expect("sim shard map poisoned");
        for slot in shards.values() {
            slot.cache.restore_learned_state(frac_permille, decay_epoch);
        }
    }

    /// A tier-geometry gauge snapshot aggregated over every live device
    /// shard (see [`ShardedLruCache::tier_stats`]): entry and byte
    /// occupancy sum across shards, and the protected fraction is the
    /// mean of the per-shard fractions.
    #[must_use]
    pub fn tier_stats(&self) -> TierStats {
        let shards = self.shards.read().expect("sim shard map poisoned");
        let mut out = TierStats::default();
        let mut permille_sum: u64 = 0;
        for slot in shards.values() {
            let tier = slot.cache.tier_stats();
            out.segmented |= tier.segmented;
            out.adaptive |= tier.adaptive;
            out.entries += tier.entries;
            out.probation_entries += tier.probation_entries;
            out.protected_entries += tier.protected_entries;
            out.capacity += tier.capacity;
            out.protected_cap += tier.protected_cap;
            out.bytes_in_use += tier.bytes_in_use;
            out.bytes_budget += tier.bytes_budget;
            permille_sum += u64::from(tier.protected_frac_permille);
        }
        if !shards.is_empty() {
            #[allow(clippy::cast_possible_truncation)]
            {
                out.protected_frac_permille = (permille_sum / shards.len() as u64) as u32;
            }
        }
        out
    }

    /// Folds a dropped shard's counters into the monotonic history.
    fn retire(&self, shard: &ShardedLruCache<JobKey, Estimate>) {
        let history = shard.stats();
        self.retired
            .write()
            .expect("retired stats poisoned")
            .absorb(&history);
    }

    /// Records one executed allocator simulation (fast or full).
    pub fn count_run(&self) {
        self.runs.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one cell derived via the pressure-aware fast path.
    pub fn count_fast_path(&self) {
        self.fast_path.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one cell that paid a full stateful replay.
    pub fn count_full_replay(&self) {
        self.full_replays.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one cell served by the incremental sweep path.
    pub fn count_incremental(&self) {
        self.incremental.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one parameterized-replay fit.
    pub fn count_param_replay(&self) {
        self.param_fits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one unbounded replay executed to seed the fast path.
    pub fn count_unbounded(&self) {
        self.unbounded.fetch_add(1, Ordering::Relaxed);
    }

    /// Drops the shard for `fingerprint` (a replaced device
    /// configuration), returning how many cached estimates it held. Other
    /// devices' shards are untouched, and the dropped shard's counter
    /// history is retained so [`stats`](Self::stats) never goes
    /// backwards.
    pub fn invalidate(&self, fingerprint: &DeviceFingerprint) -> usize {
        let removed = self
            .shards
            .write()
            .expect("sim shard map poisoned")
            .remove(fingerprint);
        let Some(slot) = removed else {
            return 0;
        };
        self.retire(&slot.cache);
        let entries = slot.cache.len();
        self.invalidated
            .fetch_add(entries as u64, Ordering::Relaxed);
        entries
    }

    /// Clones every resident estimate grouped by device fingerprint,
    /// entries in each shard's LRU → MRU order (see
    /// [`ShardedLruCache::export`]). Used by the persistence snapshot.
    #[must_use]
    pub fn export(&self) -> Vec<(DeviceFingerprint, Vec<(JobKey, Estimate)>)> {
        let shards = self.shards.read().expect("sim shard map poisoned");
        shards
            .iter()
            .map(|(fingerprint, slot)| (fingerprint.clone(), slot.cache.export()))
            .collect()
    }

    /// A snapshot of the simulation counters. Monotonic: counters of
    /// retired shards stay folded in.
    #[must_use]
    pub fn stats(&self) -> SimStats {
        let shards = self.shards.read().expect("sim shard map poisoned");
        let mut cache = *self.retired.read().expect("retired stats poisoned");
        for slot in shards.values() {
            cache.absorb(&slot.cache.stats());
        }
        SimStats {
            cache,
            sim_runs: self.runs.load(Ordering::Relaxed),
            fast_path_hits: self.fast_path.load(Ordering::Relaxed),
            full_replays: self.full_replays.load(Ordering::Relaxed),
            incremental_cells: self.incremental.load(Ordering::Relaxed),
            param_replays: self.param_fits.load(Ordering::Relaxed),
            unbounded_replays: self.unbounded.load(Ordering::Relaxed),
            device_shards: shards.len(),
            invalidated_entries: self.invalidated.load(Ordering::Relaxed),
            evicted_shards: self.evicted_shards.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmem_core::AnalysisStats;
    use xmem_models::ModelId;
    use xmem_optim::OptimizerKind;
    use xmem_runtime::TrainJobSpec;

    fn key(batch: usize) -> JobKey {
        JobKey::of(&TrainJobSpec::new(
            ModelId::MobileNetV3Small,
            OptimizerKind::Adam,
            batch,
        ))
    }

    fn estimate(peak: u64) -> Estimate {
        Estimate {
            peak_bytes: peak,
            job_peak_bytes: peak / 2,
            tensor_peak_bytes: peak / 4,
            oom_predicted: false,
            curve: Vec::new(),
            stats: AnalysisStats::default(),
        }
    }

    /// A synthetic device with a distinct fingerprint per capacity.
    fn device(capacity: u64) -> GpuDevice {
        GpuDevice {
            name: "sim-test",
            capacity,
            framework_bytes: 512 << 20,
            init_bytes: 0,
        }
    }

    #[test]
    fn equal_configs_share_a_shard_and_distinct_ones_do_not() {
        let sims = SimShards::new(8, 2);
        let a = GpuDevice::rtx3060();
        let b = GpuDevice::rtx3060();
        let c = GpuDevice::rtx4060();
        assert!(Arc::ptr_eq(&sims.shard(&a), &sims.shard(&b)));
        assert!(!Arc::ptr_eq(&sims.shard(&a), &sims.shard(&c)));
        assert_eq!(sims.stats().device_shards, 2);
    }

    #[test]
    fn invalidation_is_per_device() {
        let sims = SimShards::new(8, 2);
        let kept = GpuDevice::rtx3060();
        let replaced = GpuDevice::rtx4060();
        sims.shard(&kept).insert(key(1), estimate(100));
        sims.shard(&replaced).insert(key(1), estimate(200));
        sims.shard(&replaced).insert(key(2), estimate(300));

        assert_eq!(sims.invalidate(&DeviceFingerprint::of(&replaced)), 2);
        assert_eq!(sims.stats().invalidated_entries, 2);
        assert_eq!(sims.stats().device_shards, 1);
        assert_eq!(sims.shard(&kept).peek(&key(1)), Some(estimate(100)));
        // The replaced device starts cold.
        assert_eq!(sims.shard(&replaced).peek(&key(1)), None);
        // Invalidating an unknown fingerprint is a no-op.
        assert_eq!(sims.invalidate(&DeviceFingerprint::of(&replaced)), 0);
    }

    #[test]
    fn stats_stay_monotonic_across_invalidation() {
        let sims = SimShards::new(8, 2);
        let device = GpuDevice::rtx3060();
        sims.shard(&device).insert(key(1), estimate(1));
        assert_eq!(sims.shard(&device).get(&key(1)), Some(estimate(1)));
        assert_eq!(sims.shard(&device).get(&key(2)), None);
        let before = sims.stats();
        assert_eq!((before.cache.hits, before.cache.misses), (1, 1));

        sims.invalidate(&DeviceFingerprint::of(&device));
        let after = sims.stats();
        assert_eq!(
            after.cache, before.cache,
            "dropping a shard must not erase its counter history"
        );
        assert_eq!(after.device_shards, 0);
        assert_eq!(after.invalidated_entries, 1);
    }

    #[test]
    fn stats_aggregate_across_shards() {
        let sims = SimShards::new(8, 2);
        let a = GpuDevice::rtx3060();
        let b = GpuDevice::rtx4060();
        sims.shard(&a).insert(key(1), estimate(1));
        sims.shard(&b).insert(key(1), estimate(2));
        assert_eq!(sims.shard(&a).get(&key(1)), Some(estimate(1)));
        assert_eq!(sims.shard(&b).get(&key(2)), None);
        sims.count_run();
        sims.count_fast_path();
        let stats = sims.stats();
        assert_eq!(stats.cache.insertions, 2);
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.cache.misses, 1);
        assert_eq!(stats.sim_runs, 1);
        assert_eq!(stats.fast_path_hits, 1);
        assert_eq!(stats.full_replays, 0);
    }

    #[test]
    fn fleet_cap_retires_the_least_recently_used_shard() {
        let sims = SimShards::new(8, 2).with_max_devices(2);
        assert_eq!(sims.max_devices(), 2);
        sims.shard(&device(1 << 30)).insert(key(1), estimate(1));
        sims.shard(&device(2 << 30)).insert(key(1), estimate(2));
        // Touch the first again: the second becomes the LRU victim.
        assert_eq!(sims.shard(&device(1 << 30)).get(&key(1)), Some(estimate(1)));

        sims.shard(&device(3 << 30)).insert(key(1), estimate(3));
        let stats = sims.stats();
        assert_eq!(stats.device_shards, 2, "the cap holds");
        assert_eq!(stats.evicted_shards, 1);
        // The survivor kept its entries; the victim's shard is cold when
        // recreated.
        assert_eq!(
            sims.shard(&device(1 << 30)).peek(&key(1)),
            Some(estimate(1))
        );
        assert_eq!(sims.shard(&device(2 << 30)).peek(&key(1)), None);
    }

    #[test]
    fn fleet_cap_eviction_keeps_stats_monotonic() {
        let sims = SimShards::new(8, 2).with_max_devices(1);
        sims.shard(&device(1 << 30)).insert(key(1), estimate(1));
        assert_eq!(sims.shard(&device(1 << 30)).get(&key(1)), Some(estimate(1)));
        let before = sims.stats();

        // A second fingerprint evicts the first whole shard.
        sims.shard(&device(2 << 30)).insert(key(1), estimate(2));
        let after = sims.stats();
        assert_eq!(after.device_shards, 1);
        assert_eq!(after.evicted_shards, 1);
        assert!(after.cache.hits >= before.cache.hits);
        assert!(
            after.cache.insertions > before.cache.insertions,
            "history plus the new shard's insert"
        );
        assert_eq!(
            after.invalidated_entries, 0,
            "fleet evictions are not configuration invalidations"
        );
    }

    #[test]
    fn shards_inherit_tiering_and_restored_state_seeds_new_shards() {
        let sims = SimShards::new(8, 1).with_tiering(TieringMode::adaptive());
        assert_eq!(
            sims.learned_state(),
            Some((500, 0)),
            "initial fraction reported before any shard exists"
        );
        let first = sims.shard(&device(1 << 30));
        assert!(first.tier_stats().adaptive, "shards inherit the mode");
        sims.restore_learned_state(250, 3);
        assert_eq!(first.learned_state(), Some((250, 3)));
        let second = sims.shard(&device(2 << 30));
        assert_eq!(
            second.learned_state(),
            Some((250, 3)),
            "new shards join the fleet at the learned split"
        );
        assert_eq!(sims.learned_state(), Some((250, 3)));
        assert!(sims.tier_stats().adaptive);
        // A non-adaptive fleet has no learned state to persist.
        let plain = SimShards::new(8, 1);
        assert_eq!(plain.learned_state(), None);
        assert!(!plain.tier_stats().segmented);
    }

    #[test]
    fn fleet_churn_never_grows_past_the_cap() {
        let sims = SimShards::new(4, 2).with_max_devices(3);
        for round in 0..40u64 {
            let shard = sims.shard(&device((round + 1) << 28));
            shard.insert(key(1), estimate(round));
        }
        let stats = sims.stats();
        assert_eq!(stats.device_shards, 3);
        assert_eq!(stats.evicted_shards, 37);
        assert_eq!(
            stats.cache.insertions, 40,
            "single-threaded churn folds every shard's history"
        );
    }
}
