//! Per-device simulation shards.
//!
//! The pipeline's back half — orchestration + allocator simulation — is
//! device-dependent: the same cached analysis replays differently against
//! every capacity/overhead configuration. The multi-device front end
//! therefore keeps **one simulation LRU per device configuration**: a
//! shard map keyed by the device's [`DeviceFingerprint`], each shard an
//! independently sized [`ShardedLruCache`] from [`JobKey`] to the cell's
//! [`Estimate`]. Sharding per device is what makes invalidation surgical:
//! when a device's configuration changes, only that configuration's shard
//! is dropped — every other device keeps its warm entries.

use crate::cache::{CacheStats, ShardedLruCache};
use crate::key::JobKey;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use xmem_core::Estimate;
use xmem_runtime::GpuDevice;

/// The simulation-relevant identity of a device configuration.
///
/// Two [`GpuDevice`]s with equal fingerprints produce bit-identical
/// simulations for any analysis, so they may share one simulation shard;
/// changing any field yields a new fingerprint — and therefore a cold
/// shard — which is how stale entries become unreachable the moment a
/// device is reconfigured.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DeviceFingerprint {
    /// Marketing name (part of identity: two models with coincidentally
    /// equal sizes still simulate as distinct fleet entries).
    pub name: &'static str,
    /// Total memory capacity in bytes.
    pub capacity: u64,
    /// Framework + CUDA-context overhead in bytes.
    pub framework_bytes: u64,
    /// Memory used by other tenants in bytes.
    pub init_bytes: u64,
}

impl DeviceFingerprint {
    /// The fingerprint of `device`.
    #[must_use]
    pub fn of(device: &GpuDevice) -> Self {
        // Exhaustive destructuring: a future simulation-relevant
        // GpuDevice field breaks this line instead of being silently
        // excluded from cache identity.
        let GpuDevice {
            name,
            capacity,
            framework_bytes,
            init_bytes,
        } = *device;
        DeviceFingerprint {
            name,
            capacity,
            framework_bytes,
            init_bytes,
        }
    }
}

/// Counters of the per-device simulation layer, alongside the analysis
/// cache's [`CacheStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Aggregated hit/miss/insert/evict counters over every device shard.
    pub cache: CacheStats,
    /// Allocator simulations actually executed — the ground truth the
    /// matrix layer is judged against: a full M × D matrix costs exactly
    /// M analyses and M × D simulations.
    pub sim_runs: u64,
    /// Live device shards (distinct device configurations simulated so
    /// far).
    pub device_shards: usize,
    /// Cached estimates dropped because their device configuration was
    /// replaced ([`invalidate`](SimShards::invalidate)).
    pub invalidated_entries: u64,
}

/// The shard map: one simulation LRU per device fingerprint.
///
/// Shards are created on first use and sized identically (capacity and
/// lock-shard count are fixed at construction). Lookups take a read lock
/// on the map — only shard *creation* and invalidation write-lock it.
#[derive(Debug)]
pub struct SimShards {
    shards: RwLock<HashMap<DeviceFingerprint, Arc<ShardedLruCache<JobKey, Estimate>>>>,
    /// Per-shard entry capacity.
    capacity: usize,
    /// Lock shards inside each per-device LRU.
    lock_shards: usize,
    runs: AtomicU64,
    invalidated: AtomicU64,
    /// Counter history of invalidated shards, folded in so
    /// [`stats`](Self::stats) stays **monotonic**: dropping a shard must
    /// not make previously reported hits/misses vanish (delta-based
    /// monitoring would see negative rates).
    retired: RwLock<CacheStats>,
}

impl SimShards {
    /// An empty shard map whose per-device LRUs hold `capacity` entries
    /// over `lock_shards` locks each.
    #[must_use]
    pub fn new(capacity: usize, lock_shards: usize) -> Self {
        SimShards {
            shards: RwLock::new(HashMap::new()),
            capacity,
            lock_shards,
            runs: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
            retired: RwLock::new(CacheStats::default()),
        }
    }

    /// The simulation LRU for `device`, created on first use.
    #[must_use]
    pub fn shard(&self, device: &GpuDevice) -> Arc<ShardedLruCache<JobKey, Estimate>> {
        let fingerprint = DeviceFingerprint::of(device);
        if let Some(shard) = self
            .shards
            .read()
            .expect("sim shard map poisoned")
            .get(&fingerprint)
        {
            return Arc::clone(shard);
        }
        let mut shards = self.shards.write().expect("sim shard map poisoned");
        Arc::clone(
            shards
                .entry(fingerprint)
                .or_insert_with(|| Arc::new(ShardedLruCache::new(self.capacity, self.lock_shards))),
        )
    }

    /// Records one executed allocator simulation.
    pub fn count_run(&self) {
        self.runs.fetch_add(1, Ordering::Relaxed);
    }

    /// Drops the shard for `fingerprint` (a replaced device
    /// configuration), returning how many cached estimates it held. Other
    /// devices' shards are untouched, and the dropped shard's counter
    /// history is retained so [`stats`](Self::stats) never goes
    /// backwards.
    pub fn invalidate(&self, fingerprint: &DeviceFingerprint) -> usize {
        let removed = self
            .shards
            .write()
            .expect("sim shard map poisoned")
            .remove(fingerprint);
        let Some(shard) = removed else {
            return 0;
        };
        let history = shard.stats();
        let mut retired = self.retired.write().expect("retired stats poisoned");
        retired.hits += history.hits;
        retired.misses += history.misses;
        retired.insertions += history.insertions;
        retired.evictions += history.evictions;
        drop(retired);
        let entries = shard.len();
        self.invalidated
            .fetch_add(entries as u64, Ordering::Relaxed);
        entries
    }

    /// A snapshot of the simulation counters. Monotonic: counters of
    /// invalidated shards stay folded in.
    #[must_use]
    pub fn stats(&self) -> SimStats {
        let shards = self.shards.read().expect("sim shard map poisoned");
        let mut cache = *self.retired.read().expect("retired stats poisoned");
        for shard in shards.values() {
            let s = shard.stats();
            cache.hits += s.hits;
            cache.misses += s.misses;
            cache.insertions += s.insertions;
            cache.evictions += s.evictions;
        }
        SimStats {
            cache,
            sim_runs: self.runs.load(Ordering::Relaxed),
            device_shards: shards.len(),
            invalidated_entries: self.invalidated.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmem_core::AnalysisStats;
    use xmem_models::ModelId;
    use xmem_optim::OptimizerKind;
    use xmem_runtime::TrainJobSpec;

    fn key(batch: usize) -> JobKey {
        JobKey::of(&TrainJobSpec::new(
            ModelId::MobileNetV3Small,
            OptimizerKind::Adam,
            batch,
        ))
    }

    fn estimate(peak: u64) -> Estimate {
        Estimate {
            peak_bytes: peak,
            job_peak_bytes: peak / 2,
            tensor_peak_bytes: peak / 4,
            oom_predicted: false,
            curve: Vec::new(),
            stats: AnalysisStats::default(),
        }
    }

    #[test]
    fn equal_configs_share_a_shard_and_distinct_ones_do_not() {
        let sims = SimShards::new(8, 2);
        let a = GpuDevice::rtx3060();
        let b = GpuDevice::rtx3060();
        let c = GpuDevice::rtx4060();
        assert!(Arc::ptr_eq(&sims.shard(&a), &sims.shard(&b)));
        assert!(!Arc::ptr_eq(&sims.shard(&a), &sims.shard(&c)));
        assert_eq!(sims.stats().device_shards, 2);
    }

    #[test]
    fn invalidation_is_per_device() {
        let sims = SimShards::new(8, 2);
        let kept = GpuDevice::rtx3060();
        let replaced = GpuDevice::rtx4060();
        sims.shard(&kept).insert(key(1), estimate(100));
        sims.shard(&replaced).insert(key(1), estimate(200));
        sims.shard(&replaced).insert(key(2), estimate(300));

        assert_eq!(sims.invalidate(&DeviceFingerprint::of(&replaced)), 2);
        assert_eq!(sims.stats().invalidated_entries, 2);
        assert_eq!(sims.stats().device_shards, 1);
        assert_eq!(sims.shard(&kept).peek(&key(1)), Some(estimate(100)));
        // The replaced device starts cold.
        assert_eq!(sims.shard(&replaced).peek(&key(1)), None);
        // Invalidating an unknown fingerprint is a no-op.
        assert_eq!(sims.invalidate(&DeviceFingerprint::of(&replaced)), 0);
    }

    #[test]
    fn stats_stay_monotonic_across_invalidation() {
        let sims = SimShards::new(8, 2);
        let device = GpuDevice::rtx3060();
        sims.shard(&device).insert(key(1), estimate(1));
        assert_eq!(sims.shard(&device).get(&key(1)), Some(estimate(1)));
        assert_eq!(sims.shard(&device).get(&key(2)), None);
        let before = sims.stats();
        assert_eq!((before.cache.hits, before.cache.misses), (1, 1));

        sims.invalidate(&DeviceFingerprint::of(&device));
        let after = sims.stats();
        assert_eq!(
            after.cache, before.cache,
            "dropping a shard must not erase its counter history"
        );
        assert_eq!(after.device_shards, 0);
        assert_eq!(after.invalidated_entries, 1);
    }

    #[test]
    fn stats_aggregate_across_shards() {
        let sims = SimShards::new(8, 2);
        let a = GpuDevice::rtx3060();
        let b = GpuDevice::rtx4060();
        sims.shard(&a).insert(key(1), estimate(1));
        sims.shard(&b).insert(key(1), estimate(2));
        assert_eq!(sims.shard(&a).get(&key(1)), Some(estimate(1)));
        assert_eq!(sims.shard(&b).get(&key(2)), None);
        sims.count_run();
        let stats = sims.stats();
        assert_eq!(stats.cache.insertions, 2);
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.cache.misses, 1);
        assert_eq!(stats.sim_runs, 1);
    }
}
