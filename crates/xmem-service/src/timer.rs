//! Deadline timer: actively settles expired futures.
//!
//! Deadlines are checked lazily at poll, wait, and worker-claim time, but
//! an `.await`-ing consumer parked behind a busy pool would otherwise see
//! nothing until the next completion wake-up — arbitrarily later than the
//! deadline it asked for. The timer closes that gap: every
//! deadline-carrying submission is registered here, and a dedicated
//! thread sleeps until the nearest due time and settles whatever expired,
//! waking the parked consumer through the future's own wakers.
//!
//! One timer thread serves a whole [`AsyncEstimationService`]
//! (`crate::AsyncEstimationService`); it blocks in `recv` while nothing
//! carries a deadline, and shuts down when the service drops its sender.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::mpsc::{self, RecvTimeoutError, Sender};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::future::{LateOutcome, PoolFuture, WeakExpiry};

/// Type-erased view of a deadline-carrying future: one timer watches
/// futures of every output type. Implementations hold only a weak
/// reference — the timer never keeps results alive past settlement.
trait Expirable: Send {
    /// Settles the future with its deadline outcome unless it already
    /// settled (or every caller-side handle is gone).
    fn expire(&self);
}

impl<T: LateOutcome + 'static> Expirable for WeakExpiry<T> {
    fn expire(&self) {
        WeakExpiry::expire(self);
    }
}

struct Watch {
    due: Instant,
    future: Box<dyn Expirable>,
}

impl PartialEq for Watch {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due
    }
}
impl Eq for Watch {}
impl PartialOrd for Watch {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Watch {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.due.cmp(&other.due)
    }
}

/// Settles watched futures at their deadlines from a dedicated thread.
#[derive(Debug)]
pub(crate) struct DeadlineTimer {
    sender: Option<Sender<Watch>>,
    thread: Option<JoinHandle<()>>,
}

impl DeadlineTimer {
    /// Spawns the timer thread (idle-blocked until the first watch).
    pub(crate) fn new() -> Self {
        let (sender, receiver) = mpsc::channel::<Watch>();
        let thread = std::thread::Builder::new()
            .name("xmem-deadline-timer".to_string())
            .spawn(move || {
                let mut heap: BinaryHeap<Reverse<Watch>> = BinaryHeap::new();
                loop {
                    // Sleep until the nearest deadline (or forever when
                    // nothing is watched); a new watch interrupts the sleep.
                    let received = match heap.peek() {
                        Some(Reverse(next)) => {
                            let timeout = next.due.saturating_duration_since(Instant::now());
                            receiver.recv_timeout(timeout)
                        }
                        None => receiver.recv().map_err(|_| RecvTimeoutError::Disconnected),
                    };
                    match received {
                        Ok(watch) => heap.push(Reverse(watch)),
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                    let now = Instant::now();
                    while heap.peek().is_some_and(|Reverse(w)| w.due <= now) {
                        let Reverse(watch) = heap.pop().expect("peeked entry");
                        watch.future.expire();
                    }
                }
            })
            .expect("spawn deadline timer");
        DeadlineTimer {
            sender: Some(sender),
            thread: Some(thread),
        }
    }

    /// Registers `future` for active expiry at its deadline. Futures
    /// without a deadline are not watched.
    pub(crate) fn watch<T: LateOutcome + 'static>(&self, future: &PoolFuture<T>) {
        let Some(due) = future.deadline() else {
            return;
        };
        let watch = Watch {
            due,
            future: Box::new(future.weak_expiry()),
        };
        self.sender
            .as_ref()
            .expect("timer sender lives until drop")
            .send(watch)
            .expect("timer thread lives until drop");
    }
}

impl Drop for DeadlineTimer {
    fn drop(&mut self) {
        drop(self.sender.take());
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::future::promise_pair;
    use std::time::Duration;
    use xmem_core::EstimateError;

    #[test]
    fn timer_settles_an_unclaimed_future_at_its_deadline() {
        let timer = DeadlineTimer::new();
        let (_promise, future) = promise_pair::<Result<u32, EstimateError>>(Some(
            Instant::now() + Duration::from_millis(25),
        ));
        timer.watch(&future);
        // Block on the future without ever calling wait()'s own timeout
        // path: the timer must wake the poll loop by itself.
        let started = Instant::now();
        let output = crate::executor::block_on(future);
        assert_eq!(output, Err(EstimateError::DeadlineExceeded));
        assert!(started.elapsed() >= Duration::from_millis(24));
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "the timer, not a fallback, must have fired"
        );
    }

    #[test]
    fn timer_leaves_completed_futures_alone() {
        let timer = DeadlineTimer::new();
        let (promise, future) = promise_pair::<Result<u32, EstimateError>>(Some(
            Instant::now() + Duration::from_millis(20),
        ));
        timer.watch(&future);
        assert!(promise.claim());
        assert!(promise.complete(Ok(3)));
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(future.wait(), Ok(3), "expiry after settlement is a no-op");
    }

    #[test]
    fn watches_in_any_order_fire_in_due_order() {
        let timer = DeadlineTimer::new();
        let late = promise_pair::<Result<u32, EstimateError>>(Some(
            Instant::now() + Duration::from_millis(60),
        ))
        .1;
        let early = promise_pair::<Result<u32, EstimateError>>(Some(
            Instant::now() + Duration::from_millis(15),
        ))
        .1;
        timer.watch(&late); // registered first, due second
        timer.watch(&early);
        std::thread::sleep(Duration::from_millis(35));
        assert!(early.is_settled(), "earlier deadline fired first");
        assert!(!late.is_settled(), "later deadline still pending");
        std::thread::sleep(Duration::from_millis(40));
        assert!(late.is_settled());
    }
}
