//! Server-level observability: wire counters, per-route latency
//! histograms, and the Prometheus text rendering of everything the
//! process knows — including every counter the underlying estimation
//! service already tracks (cache, single-flight, negative cache,
//! simulation shards, replay-strategy split).

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;
use xmem_service::EstimationService;

/// Histogram bucket upper bounds, in nanoseconds (plus an implicit +Inf).
/// Log-spaced from 100µs to 10s — estimation answers span cache hits
/// (microseconds) to cold large-model profiles (seconds).
const BUCKET_BOUNDS_NS: [u64; 12] = [
    100_000,
    250_000,
    500_000,
    1_000_000,
    2_500_000,
    5_000_000,
    10_000_000,
    25_000_000,
    100_000_000,
    500_000_000,
    2_500_000_000,
    10_000_000_000,
];

/// A fixed-bucket latency histogram (Prometheus `_bucket`/`_sum`/`_count`
/// convention; buckets are cumulative when rendered).
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKET_BOUNDS_NS.len()],
    over: AtomicU64,
    sum_ns: AtomicU64,
    count: AtomicU64,
}

impl LatencyHistogram {
    /// Records one observation.
    pub fn observe(&self, elapsed: Duration) {
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        match BUCKET_BOUNDS_NS.iter().position(|&bound| ns <= bound) {
            Some(i) => self.buckets[i].fetch_add(1, Ordering::Relaxed),
            None => self.over.fetch_add(1, Ordering::Relaxed),
        };
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    fn render(&self, out: &mut String, name: &str, route: &str) {
        let mut cumulative = 0;
        for (i, &bound) in BUCKET_BOUNDS_NS.iter().enumerate() {
            cumulative += self.buckets[i].load(Ordering::Relaxed);
            #[allow(clippy::cast_precision_loss)]
            let le = bound as f64 / 1e9;
            let _ = writeln!(
                out,
                "{name}_bucket{{route=\"{route}\",le=\"{le}\"}} {cumulative}"
            );
        }
        cumulative += self.over.load(Ordering::Relaxed);
        let _ = writeln!(
            out,
            "{name}_bucket{{route=\"{route}\",le=\"+Inf\"}} {cumulative}"
        );
        #[allow(clippy::cast_precision_loss)]
        let sum = self.sum_ns.load(Ordering::Relaxed) as f64 / 1e9;
        let _ = writeln!(out, "{name}_sum{{route=\"{route}\"}} {sum}");
        let _ = writeln!(
            out,
            "{name}_count{{route=\"{route}\"}} {}",
            self.count.load(Ordering::Relaxed)
        );
    }
}

/// The served routes, used as metric labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// `POST /v1/estimate`
    Estimate,
    /// `POST /v1/matrix`
    Matrix,
    /// `POST /v1/sweep`
    Sweep,
    /// `POST /v1/plan`
    Plan,
    /// `POST /v1/best-device`
    BestDevice,
    /// `GET /healthz`
    Healthz,
    /// `GET /metrics`
    Metrics,
    /// `POST /v1/shutdown`
    Shutdown,
    /// `GET /v1/debug/traces`
    DebugTraces,
    /// Anything that matched no route (404/405 answers).
    Unmatched,
}

/// Every route, in rendering order.
pub const ROUTES: [Route; 10] = [
    Route::Estimate,
    Route::Matrix,
    Route::Sweep,
    Route::Plan,
    Route::BestDevice,
    Route::Healthz,
    Route::Metrics,
    Route::Shutdown,
    Route::DebugTraces,
    Route::Unmatched,
];

impl Route {
    /// The metric label for this route.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Route::Estimate => "estimate",
            Route::Matrix => "matrix",
            Route::Sweep => "sweep",
            Route::Plan => "plan",
            Route::BestDevice => "best_device",
            Route::Healthz => "healthz",
            Route::Metrics => "metrics",
            Route::Shutdown => "shutdown",
            Route::DebugTraces => "debug_traces",
            Route::Unmatched => "unmatched",
        }
    }

    fn index(self) -> usize {
        ROUTES
            .iter()
            .position(|&r| r == self)
            .expect("route is in ROUTES")
    }
}

/// Response status codes get exact counters for the codes this server
/// emits; anything else lands in its class bucket.
const TRACKED_STATUS: [u16; 12] = [200, 400, 401, 404, 405, 413, 422, 431, 500, 501, 503, 504];

/// Wire- and route-level counters for one server instance. All methods
/// take `&self`; everything is atomics.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Connections accepted.
    connections_total: AtomicU64,
    /// Connections currently open (gauge).
    connections_active: AtomicU64,
    /// Connections refused because the worker queue was full (answered
    /// `503` at accept time).
    connections_rejected: AtomicU64,
    /// Complete requests parsed.
    requests_total: AtomicU64,
    /// Requests rejected at the wire layer (parse errors, limit trips).
    wire_errors: AtomicU64,
    /// Raw bytes read from / written to sockets.
    bytes_read: AtomicU64,
    /// See [`bytes_read`](Self::bytes_read).
    bytes_written: AtomicU64,
    /// Responses by status code (indexed like [`TRACKED_STATUS`], last
    /// slot = other).
    responses: [AtomicU64; TRACKED_STATUS.len() + 1],
    /// Per-route request counts.
    route_requests: [AtomicU64; ROUTES.len()],
    /// Per-route handling latency.
    route_latency: [LatencyHistogram; ROUTES.len()],
    /// Whether the server is draining (shutdown initiated).
    draining: AtomicBool,
}

impl ServerMetrics {
    /// A zeroed metrics block.
    #[must_use]
    pub fn new() -> Self {
        ServerMetrics::default()
    }

    pub(crate) fn connection_opened(&self) {
        self.connections_total.fetch_add(1, Ordering::Relaxed);
        self.connections_active.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn connection_closed(&self) {
        self.connections_active.fetch_sub(1, Ordering::Relaxed);
    }

    pub(crate) fn connection_rejected(&self) {
        self.connections_rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn wire_error(&self) {
        self.wire_errors.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_bytes_read(&self, n: u64) {
        self.bytes_read.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn add_bytes_written(&self, n: u64) {
        self.bytes_written.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn record_request(&self, route: Route, status: u16, elapsed: Duration) {
        self.requests_total.fetch_add(1, Ordering::Relaxed);
        self.route_requests[route.index()].fetch_add(1, Ordering::Relaxed);
        self.route_latency[route.index()].observe(elapsed);
        self.record_status(status);
    }

    pub(crate) fn record_status(&self, status: u16) {
        let slot = TRACKED_STATUS
            .iter()
            .position(|&s| s == status)
            .unwrap_or(TRACKED_STATUS.len());
        self.responses[slot].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn set_draining(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been initiated.
    #[must_use]
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Total complete requests parsed.
    #[must_use]
    pub fn requests_total(&self) -> u64 {
        self.requests_total.load(Ordering::Relaxed)
    }

    /// Responses carrying `status`, when it is one of the tracked codes.
    #[must_use]
    pub fn responses_with_status(&self, status: u16) -> u64 {
        TRACKED_STATUS
            .iter()
            .position(|&s| s == status)
            .map_or(0, |slot| self.responses[slot].load(Ordering::Relaxed))
    }

    /// Connections currently open.
    #[must_use]
    pub fn active_connections(&self) -> u64 {
        self.connections_active.load(Ordering::Relaxed)
    }

    /// Renders the Prometheus text exposition: every server counter above
    /// plus the estimation service's own counters (stage cache,
    /// single-flight, negative cache, simulation shards, replay-strategy
    /// split, profile runs).
    #[must_use]
    pub fn render_prometheus(&self, service: &EstimationService) -> String {
        let mut out = String::with_capacity(8 * 1024);
        let gauge = |out: &mut String, name: &str, help: &str, value: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        };
        let counter = |out: &mut String, name: &str, help: &str, value: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        };

        counter(
            &mut out,
            "xmem_server_connections_total",
            "Connections accepted",
            self.connections_total.load(Ordering::Relaxed),
        );
        gauge(
            &mut out,
            "xmem_server_connections_active",
            "Connections currently open",
            self.connections_active.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "xmem_server_connections_rejected_total",
            "Connections refused at accept time (worker queue full)",
            self.connections_rejected.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "xmem_server_requests_total",
            "Complete HTTP requests parsed",
            self.requests_total.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "xmem_server_wire_errors_total",
            "Requests rejected at the wire layer",
            self.wire_errors.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "xmem_server_bytes_read_total",
            "Raw bytes read from sockets",
            self.bytes_read.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "xmem_server_bytes_written_total",
            "Raw bytes written to sockets",
            self.bytes_written.load(Ordering::Relaxed),
        );
        gauge(
            &mut out,
            "xmem_server_draining",
            "1 while graceful shutdown is draining in-flight work",
            u64::from(self.draining()),
        );

        let _ = writeln!(
            out,
            "# HELP xmem_http_responses_total Responses by status code"
        );
        let _ = writeln!(out, "# TYPE xmem_http_responses_total counter");
        for (i, &status) in TRACKED_STATUS.iter().enumerate() {
            let _ = writeln!(
                out,
                "xmem_http_responses_total{{code=\"{status}\"}} {}",
                self.responses[i].load(Ordering::Relaxed)
            );
        }
        let _ = writeln!(
            out,
            "xmem_http_responses_total{{code=\"other\"}} {}",
            self.responses[TRACKED_STATUS.len()].load(Ordering::Relaxed)
        );

        let _ = writeln!(out, "# HELP xmem_http_requests_total Requests by route");
        let _ = writeln!(out, "# TYPE xmem_http_requests_total counter");
        for route in ROUTES {
            let _ = writeln!(
                out,
                "xmem_http_requests_total{{route=\"{}\"}} {}",
                route.label(),
                self.route_requests[route.index()].load(Ordering::Relaxed)
            );
        }
        let _ = writeln!(
            out,
            "# HELP xmem_http_request_duration_seconds Request handling latency"
        );
        let _ = writeln!(out, "# TYPE xmem_http_request_duration_seconds histogram");
        for route in ROUTES {
            self.route_latency[route.index()].render(
                &mut out,
                "xmem_http_request_duration_seconds",
                route.label(),
            );
        }

        // --- the estimation service's own counters --------------------
        let cache = service.cache_stats();
        let _ = writeln!(
            out,
            "# HELP xmem_stage_cache_events_total Stage-cache counter events"
        );
        let _ = writeln!(out, "# TYPE xmem_stage_cache_events_total counter");
        for (event, value) in [
            ("hit", cache.hits),
            ("miss", cache.misses),
            ("insert", cache.insertions),
            ("evict", cache.evictions),
            ("reject", cache.rejected),
            ("promote", cache.promoted),
        ] {
            let _ = writeln!(
                out,
                "xmem_stage_cache_events_total{{event=\"{event}\"}} {value}"
            );
        }
        // --- adaptive cache tiering, one row per cache tier ------------
        let tiers = [
            ("stage", service.cache_stats(), service.stage_tier_stats()),
            (
                "replay",
                service.replay_cache_stats(),
                service.replay_tier_stats(),
            ),
            (
                "param",
                service.param_cache_stats(),
                service.param_tier_stats(),
            ),
            ("sim", service.sim_stats().cache, service.sim_tier_stats()),
        ];
        let labeled_gauge = |out: &mut String, name: &str, help: &str| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
        };
        let labeled_counter = |out: &mut String, name: &str, help: &str| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
        };
        labeled_gauge(
            &mut out,
            "xmem_cache_entries",
            "Resident entries per cache tier and SLRU segment",
        );
        for (name, _, tier) in &tiers {
            let _ = writeln!(
                out,
                "xmem_cache_entries{{cache=\"{name}\",segment=\"probation\"}} {}",
                tier.probation_entries
            );
            let _ = writeln!(
                out,
                "xmem_cache_entries{{cache=\"{name}\",segment=\"protected\"}} {}",
                tier.protected_entries
            );
        }
        for (metric, help, pick) in [
            (
                "xmem_cache_capacity",
                "Entry capacity per cache tier",
                (|t| t.capacity) as fn(&xmem_service::TierStats) -> u64,
            ),
            (
                "xmem_cache_protected_capacity",
                "Protected-segment entry cap per cache tier (live, tuner-adjusted)",
                |t| t.protected_cap,
            ),
            (
                "xmem_cache_bytes_in_use",
                "Resident bytes per cache tier (0 when unweighted)",
                |t| t.bytes_in_use,
            ),
            (
                "xmem_cache_bytes_budget",
                "Bytes budget per cache tier (0 when unbudgeted)",
                |t| t.bytes_budget,
            ),
            (
                "xmem_cache_protected_frac_permille",
                "Live learned (or pinned) protected fraction per cache tier, in permille",
                |t| u64::from(t.protected_frac_permille),
            ),
            (
                "xmem_cache_segmented",
                "1 when the tier runs SLRU (static or adaptive) admission",
                |t| u64::from(t.segmented),
            ),
            (
                "xmem_cache_adaptive",
                "1 when the tier's protected split is tuner-adjusted online",
                |t| u64::from(t.adaptive),
            ),
        ] {
            labeled_gauge(&mut out, metric, help);
            for (name, _, tier) in &tiers {
                let _ = writeln!(out, "{metric}{{cache=\"{name}\"}} {}", pick(tier));
            }
        }
        for (metric, help, pick) in [
            (
                "xmem_cache_ghost_hits_total",
                "Misses whose key was remembered by a ghost list",
                (|s| s.ghost_hits) as fn(&xmem_service::CacheStats) -> u64,
            ),
            (
                "xmem_cache_tuner_steps_total",
                "Online tuner adjustments of the protected fraction",
                |s| s.tuner_steps,
            ),
            (
                "xmem_cache_sketch_resets_total",
                "Frequency-sketch halving decays",
                |s| s.sketch_resets,
            ),
            (
                "xmem_cache_admission_denied_total",
                "Inserts denied by the TinyLFU admission gate",
                |s| s.admission_denied,
            ),
        ] {
            labeled_counter(&mut out, metric, help);
            for (name, stats, _) in &tiers {
                let _ = writeln!(out, "{metric}{{cache=\"{name}\"}} {}", pick(stats));
            }
        }

        let flights = service.flight_stats();
        counter(
            &mut out,
            "xmem_flight_executions_total",
            "Single-flight leader executions",
            flights.executions,
        );
        counter(
            &mut out,
            "xmem_flight_coalesced_total",
            "Queries coalesced onto another caller's in-flight run",
            flights.coalesced,
        );
        let negative = service.negative_stats();
        let _ = writeln!(
            out,
            "# HELP xmem_negative_cache_events_total Negative-cache counter events"
        );
        let _ = writeln!(out, "# TYPE xmem_negative_cache_events_total counter");
        for (event, value) in [
            ("hit", negative.hits),
            ("insert", negative.insertions),
            ("evict", negative.evictions),
        ] {
            let _ = writeln!(
                out,
                "xmem_negative_cache_events_total{{event=\"{event}\"}} {value}"
            );
        }
        let sims = service.sim_stats();
        let _ = writeln!(
            out,
            "# HELP xmem_sim_cache_events_total Simulation-shard cache counter events"
        );
        let _ = writeln!(out, "# TYPE xmem_sim_cache_events_total counter");
        for (event, value) in [
            ("hit", sims.cache.hits),
            ("miss", sims.cache.misses),
            ("insert", sims.cache.insertions),
            ("evict", sims.cache.evictions),
            ("promote", sims.cache.promoted),
        ] {
            let _ = writeln!(
                out,
                "xmem_sim_cache_events_total{{event=\"{event}\"}} {value}"
            );
        }
        counter(
            &mut out,
            "xmem_sim_runs_total",
            "Allocator simulations executed",
            sims.sim_runs,
        );
        counter(
            &mut out,
            "xmem_sim_fast_path_hits_total",
            "Cells derived from a cached unbounded replay",
            sims.fast_path_hits,
        );
        counter(
            &mut out,
            "xmem_sim_full_replays_total",
            "Cells that paid a full stateful replay",
            sims.full_replays,
        );
        counter(
            &mut out,
            "xmem_sim_incremental_cells_total",
            "Cells materialized from a parameterized sweep replay",
            sims.incremental_cells,
        );
        counter(
            &mut out,
            "xmem_sim_param_replays_total",
            "Parameterized-replay fits performed",
            sims.param_replays,
        );
        counter(
            &mut out,
            "xmem_sim_unbounded_replays_total",
            "Unbounded seed replays executed",
            sims.unbounded_replays,
        );
        gauge(
            &mut out,
            "xmem_sim_device_shards",
            "Live per-device simulation shards",
            sims.device_shards as u64,
        );
        counter(
            &mut out,
            "xmem_sim_invalidated_entries_total",
            "Cached estimates dropped by device reconfiguration",
            sims.invalidated_entries,
        );
        counter(
            &mut out,
            "xmem_profile_runs_total",
            "CPU profile executions",
            service.profile_runs(),
        );
        let persist = service.persist_stats();
        gauge(
            &mut out,
            "xmem_persist_enabled",
            "Whether crash-consistent persistence is active (a state dir is configured)",
            u64::from(persist.enabled),
        );
        counter(
            &mut out,
            "xmem_persist_snapshot_writes_total",
            "Cache-state snapshots written (temp-file + rename completed)",
            persist.snapshot_writes,
        );
        counter(
            &mut out,
            "xmem_persist_journal_records_total",
            "Cache inserts appended to the state journal",
            persist.journal_records,
        );
        counter(
            &mut out,
            "xmem_persist_recovered_entries_total",
            "Cache entries recovered from the state dir at boot",
            persist.recovered_entries,
        );
        counter(
            &mut out,
            "xmem_persist_recovery_truncated_total",
            "Torn or corrupt state-file tails dropped during boot recovery",
            persist.recovery_truncated,
        );
        counter(
            &mut out,
            "xmem_persist_recovery_skipped_total",
            "Recovered sim cells skipped for unmatched device fingerprints",
            persist.recovery_skipped,
        );
        gauge(
            &mut out,
            "xmem_persist_snapshot_bytes",
            "Size of the current snapshot file",
            persist.snapshot_bytes,
        );
        gauge(
            &mut out,
            "xmem_persist_journal_bytes",
            "Size of the current journal file",
            persist.journal_bytes,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_cumulative_in_render() {
        let h = LatencyHistogram::default();
        h.observe(Duration::from_micros(50));
        h.observe(Duration::from_micros(50));
        h.observe(Duration::from_millis(3));
        h.observe(Duration::from_secs(60)); // beyond the last bound
        let mut out = String::new();
        h.render(&mut out, "d", "r");
        assert!(out.contains("d_bucket{route=\"r\",le=\"0.0001\"} 2"));
        assert!(out.contains("d_bucket{route=\"r\",le=\"0.005\"} 3"));
        assert!(out.contains("d_bucket{route=\"r\",le=\"+Inf\"} 4"));
        assert!(out.contains("d_count{route=\"r\"} 4"));
    }

    #[test]
    fn status_tracking_covers_emitted_codes_and_buckets_the_rest() {
        let m = ServerMetrics::new();
        m.record_status(200);
        m.record_status(200);
        m.record_status(504);
        m.record_status(418); // untracked → other
        assert_eq!(m.responses_with_status(200), 2);
        assert_eq!(m.responses_with_status(504), 1);
        assert_eq!(m.responses_with_status(418), 0);
        assert_eq!(m.responses[TRACKED_STATUS.len()].load(Ordering::Relaxed), 1);
    }
}
