//! Network serving front end: a dependency-free HTTP/1.1 server exposing
//! the estimation service to schedulers over the wire.
//!
//! xMem's deployment shape is an estimator sitting *in front of* a GPU
//! cluster, answering admission and placement questions before a job ever
//! touches a device. PRs 1–4 built that engine — sharded caches, an async
//! runtime, the device matrix, the replay fast path — and this crate is
//! its ingress: a hand-rolled HTTP/1.1 server over `std::net` (the build
//! environment has no crates.io, and the wire protocol is small enough to
//! own), so any scheduler that can speak HTTP can ask.
//!
//! * [`wire`] — an incremental, strictly bounded request parser and a
//!   deterministic response writer. Malformed or oversized input answers
//!   `400`/`413`/`431`/`501`; it never panics a worker.
//! * [`server`] — the acceptor + bounded connection-worker pool, routing
//!   into the shared [`AsyncEstimationService`](xmem_service::AsyncEstimationService):
//!   `POST /v1/estimate`, `/v1/matrix`, `/v1/sweep`, `/v1/plan`,
//!   `/v1/best-device`, with per-request deadlines
//!   (`x-xmem-deadline-ms` → `504`), queue backpressure
//!   (`503` + `retry-after`), `GET /healthz`, `GET /metrics`
//!   (Prometheus text), and graceful drain (`POST /v1/shutdown` or
//!   [`ServerHandle::shutdown`]) that answers every in-flight request
//!   before closing.
//! * [`api`] — the JSON request/response bodies. Jobs use the same
//!   grammar as the CLI and job files ([`xmem_service::jobspec`]);
//!   responses are rendered through public functions, so a test can
//!   assert a loopback response is **byte-identical** to rendering the
//!   direct service call's result.
//! * [`client`] — a minimal blocking keep-alive client, reused by the
//!   load bench, the examples, and the integration tests.
//! * [`cluster`] — the consistent-hash scale-out tier: ring placement
//!   over [`JobKey`](xmem_service::JobKey) / family placement over
//!   [`SweepKey`](xmem_service::SweepKey), owner forwarding with an
//!   `x-xmem-forwarded` hop guard, shared-secret ingress auth
//!   (`x-xmem-auth`), per-peer health probing, and the ring-aware
//!   [`ClusterClient`] with bounded failover.
//! * [`metrics`] — wire counters and per-route latency histograms, plus
//!   the Prometheus rendering of every counter the service already
//!   tracks.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use xmem_server::{HttpClient, ServerConfig, ServerHandle};
//! use xmem_service::AsyncEstimationService;
//! use xmem_runtime::GpuDevice;
//!
//! let service = Arc::new(AsyncEstimationService::for_device(GpuDevice::rtx3060()));
//! let server = ServerHandle::bind("127.0.0.1:0", service, ServerConfig::default()).unwrap();
//! let mut client = HttpClient::connect(server.local_addr()).unwrap();
//! let health = client.get("/healthz").unwrap();
//! assert_eq!(health.status, 200);
//! let answer = client
//!     .post_json(
//!         "/v1/estimate",
//!         r#"{"model": "MobeNetV3Small", "optimizer": "Adam", "batch": 8, "iterations": 2}"#,
//!     )
//!     .unwrap();
//! assert_eq!(answer.status, 200);
//! assert!(answer.text().contains("peak_bytes"));
//! let report = server.shutdown();
//! assert!(report.clean);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod client;
pub mod cluster;
pub mod metrics;
pub mod server;
pub mod wire;

pub use client::{ClientResponse, HttpClient};
pub use cluster::{ClusterClient, ClusterConfig, ClusterState, AUTH_HEADER, FORWARDED_HEADER};
pub use metrics::{LatencyHistogram, Route, ServerMetrics};
pub use server::{DrainReport, ServerConfig, ServerHandle};
pub use wire::{Request, RequestParser, Response, WireError, WireLimits};
