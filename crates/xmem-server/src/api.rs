//! The HTTP API surface: request-body grammar, response-body rendering,
//! and the handler for each `/v1` route.
//!
//! Request bodies reuse the one job-spec grammar every ingress shares
//! ([`xmem_service::jobspec`]); response bodies are rendered through the
//! functions here, which tests and clients call directly — a loopback
//! response is **byte-identical** to rendering the result of the
//! equivalent direct service call.
//!
//! Every estimation failure maps to a stable JSON error body
//! `{"error":{"kind":"...","message":"..."}}` with a status code per
//! [`EstimateError`] variant (see [`estimate_error_response`]).

use crate::wire::{json_string, Request, Response};
use serde::Value;
use std::time::{Duration, Instant};
use xmem_core::{AnalysisStats, DeviceMatrix, DevicePlacement, Estimate, EstimateError};
use xmem_runtime::TrainJobSpec;
use xmem_service::jobspec::{self, job_from_value, usize_field};
use xmem_service::{AsyncEstimationService, SubmitError, TraceContext};

/// Renders a stable JSON error body.
#[must_use]
pub fn error_body(kind: &str, message: &str) -> String {
    format!(
        "{{\"error\":{{\"kind\":{},\"message\":{}}}}}",
        json_string(kind),
        json_string(message)
    )
}

/// A `400` with a `bad_request` error body.
#[must_use]
pub fn bad_request(message: &str) -> Response {
    Response::json(400, error_body("bad_request", message))
}

/// The jobspec layer's batch range error, verbatim — the one job
/// validation failure that is a *semantic* range violation rather than a
/// grammar error, so it maps to `422` instead of `400`.
pub const BATCH_RANGE_ERROR: &str = "`batch` must be >= 1";

/// Maps a jobspec validation failure to its wire shape: the batch range
/// violation is `422 invalid_job` (the body parsed; the job is
/// semantically out of range), every other message stays the `400`
/// grammar error. Matched by suffix so route-added prefixes
/// (`jobs[3]: ...`) keep the mapping.
#[must_use]
pub fn job_error_response(message: &str) -> Response {
    if message.ends_with(BATCH_RANGE_ERROR) {
        Response::json(422, error_body("invalid_job", message))
    } else {
        bad_request(message)
    }
}

/// The backpressure answer: `503` + `Retry-After`, a stable `busy` body.
#[must_use]
pub fn busy_response() -> Response {
    Response::json(503, error_body("busy", "submission queue is full; retry"))
        .with_header("retry-after", "1")
}

/// Maps an [`EstimateError`] to its status code and stable error kind.
#[must_use]
pub fn estimate_error_status(error: &EstimateError) -> (u16, &'static str) {
    match error {
        EstimateError::EmptyTrace => (422, "empty_trace"),
        EstimateError::MissingIterations => (422, "missing_iterations"),
        EstimateError::Cancelled => (500, "cancelled"),
        EstimateError::DeadlineExceeded => (504, "deadline_exceeded"),
        EstimateError::UnknownDevice(_) => (404, "unknown_device"),
        EstimateError::Internal(_) => (500, "internal"),
    }
}

/// The full error response for an [`EstimateError`].
#[must_use]
pub fn estimate_error_response(error: &EstimateError) -> Response {
    let (status, kind) = estimate_error_status(error);
    Response::json(status, error_body(kind, &error.to_string()))
}

/// The JSON value an [`Estimate`] serializes to on the wire: the peak
/// numbers, the OOM verdict, and the analysis diagnostics (the usage
/// curve is omitted — timeline recording is off on the serving path).
#[must_use]
pub fn estimate_value(estimate: &Estimate) -> Value {
    let stats = &estimate.stats;
    let categories = stats
        .categories
        .iter()
        .map(|(name, blocks, bytes)| {
            Value::Array(vec![
                Value::Str(name.clone()),
                Value::U64(*blocks as u64),
                Value::U64(*bytes),
            ])
        })
        .collect();
    Value::Object(vec![
        ("peak_bytes".to_string(), Value::U64(estimate.peak_bytes)),
        (
            "job_peak_bytes".to_string(),
            Value::U64(estimate.job_peak_bytes),
        ),
        (
            "tensor_peak_bytes".to_string(),
            Value::U64(estimate.tensor_peak_bytes),
        ),
        (
            "oom_predicted".to_string(),
            Value::Bool(estimate.oom_predicted),
        ),
        (
            "stats".to_string(),
            Value::Object(vec![
                ("categories".to_string(), Value::Array(categories)),
                (
                    "filtered_blocks".to_string(),
                    Value::U64(stats.filtered_blocks as u64),
                ),
                (
                    "adjusted_blocks".to_string(),
                    Value::U64(stats.adjusted_blocks as u64),
                ),
                (
                    "unmatched_frees".to_string(),
                    Value::U64(stats.unmatched_frees as u64),
                ),
            ]),
        ),
    ])
}

/// Parses the JSON value [`estimate_value`] renders back into an
/// [`Estimate`] — the inverse the cluster tier uses to fill a local sim
/// cell from a forwarded node's `200` response. The usage curve is not on
/// the wire (timeline recording is off on every serving path), so it
/// reconstructs empty — exactly what the owner's own cell holds.
#[must_use]
pub fn estimate_from_value(value: &Value) -> Option<Estimate> {
    let entries = value.as_object()?;
    let field_u64 = |field: &str| serde::obj_get(entries, field).and_then(Value::as_u64);
    let oom_predicted = match serde::obj_get(entries, "oom_predicted")? {
        Value::Bool(b) => *b,
        _ => return None,
    };
    let stats_entries = serde::obj_get(entries, "stats")?.as_object()?;
    let stats_usize = |field: &str| {
        serde::obj_get(stats_entries, field)
            .and_then(Value::as_u64)
            .and_then(|n| usize::try_from(n).ok())
    };
    let mut categories = Vec::new();
    for item in serde::obj_get(stats_entries, "categories")?.as_array()? {
        let triple = item.as_array()?;
        if triple.len() != 3 {
            return None;
        }
        let Value::Str(name) = &triple[0] else {
            return None;
        };
        categories.push((
            name.clone(),
            usize::try_from(triple[1].as_u64()?).ok()?,
            triple[2].as_u64()?,
        ));
    }
    Some(Estimate {
        peak_bytes: field_u64("peak_bytes")?,
        job_peak_bytes: field_u64("job_peak_bytes")?,
        tensor_peak_bytes: field_u64("tensor_peak_bytes")?,
        oom_predicted,
        curve: Vec::new(),
        stats: AnalysisStats {
            categories,
            filtered_blocks: stats_usize("filtered_blocks")?,
            adjusted_blocks: stats_usize("adjusted_blocks")?,
            unmatched_frees: stats_usize("unmatched_frees")?,
        },
    })
}

fn render(value: &Value) -> String {
    serde_json::to_string(value).expect("value rendering is infallible")
}

/// The `POST /v1/estimate` success body.
#[must_use]
pub fn estimate_body(estimate: &Estimate) -> String {
    render(&Value::Object(vec![(
        "estimate".to_string(),
        estimate_value(estimate),
    )]))
}

/// A matrix cell's value: the estimate, or its per-cell error.
fn cell_value(device: &str, outcome: &Result<Estimate, EstimateError>) -> Value {
    let mut entries = vec![("device".to_string(), Value::Str(device.to_string()))];
    match outcome {
        Ok(estimate) => entries.push(("estimate".to_string(), estimate_value(estimate))),
        Err(error) => {
            let (_, kind) = estimate_error_status(error);
            entries.push((
                "error".to_string(),
                Value::Object(vec![
                    ("kind".to_string(), Value::Str(kind.to_string())),
                    ("message".to_string(), Value::Str(error.to_string())),
                ]),
            ));
        }
    }
    Value::Object(entries)
}

/// The `POST /v1/matrix` success body.
#[must_use]
pub fn matrix_body(matrix: &DeviceMatrix) -> String {
    let devices = matrix
        .devices
        .iter()
        .map(|d| Value::Str(d.clone()))
        .collect();
    let rows = matrix
        .rows
        .iter()
        .map(|row| {
            Value::Object(vec![
                (
                    "job".to_string(),
                    xmem_service::jobspec::job_to_value(&row.spec),
                ),
                (
                    "cells".to_string(),
                    Value::Array(
                        row.cells
                            .iter()
                            .map(|cell| cell_value(&cell.device, &cell.estimate))
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    render(&Value::Object(vec![
        ("devices".to_string(), Value::Array(devices)),
        ("rows".to_string(), Value::Array(rows)),
    ]))
}

/// The `POST /v1/sweep` success body.
#[must_use]
pub fn sweep_body(results: &[(usize, Result<Estimate, EstimateError>)]) -> String {
    let entries = results
        .iter()
        .map(|(batch, outcome)| {
            let mut entry = vec![("batch".to_string(), Value::U64(*batch as u64))];
            match outcome {
                Ok(estimate) => entry.push(("estimate".to_string(), estimate_value(estimate))),
                Err(error) => {
                    let (_, kind) = estimate_error_status(error);
                    entry.push((
                        "error".to_string(),
                        Value::Object(vec![
                            ("kind".to_string(), Value::Str(kind.to_string())),
                            ("message".to_string(), Value::Str(error.to_string())),
                        ]),
                    ));
                }
            }
            Value::Object(entry)
        })
        .collect();
    render(&Value::Object(vec![(
        "results".to_string(),
        Value::Array(entries),
    )]))
}

/// The `POST /v1/plan` success body.
#[must_use]
pub fn plan_body(max_batch: Option<usize>) -> String {
    let value = match max_batch {
        Some(batch) => Value::U64(batch as u64),
        None => Value::Null,
    };
    render(&Value::Object(vec![("max_batch".to_string(), value)]))
}

/// The `POST /v1/best-device` success body.
#[must_use]
pub fn placement_body(placement: Option<&DevicePlacement>) -> String {
    let value = match placement {
        Some(p) => Value::Object(vec![
            ("device".to_string(), Value::Str(p.device.clone())),
            ("estimate".to_string(), estimate_value(&p.estimate)),
        ]),
        None => Value::Null,
    };
    render(&Value::Object(vec![("placement".to_string(), value)]))
}

/// The header carrying a per-request deadline budget in milliseconds.
pub const DEADLINE_HEADER: &str = "x-xmem-deadline-ms";

/// Parses the request's deadline header into an absolute instant.
///
/// # Errors
/// A ready-to-send `400` for a non-numeric value.
pub fn deadline_of(request: &Request) -> Result<Option<Instant>, Response> {
    match request.header(DEADLINE_HEADER) {
        None => Ok(None),
        Some(raw) => {
            let ms: u64 = raw
                .parse()
                .map_err(|_| bad_request(&format!("`{DEADLINE_HEADER}` must be a number")))?;
            Ok(Some(Instant::now() + Duration::from_millis(ms)))
        }
    }
}

/// Parses a request body as JSON.
fn body_json(request: &Request) -> Result<Value, Response> {
    let text = std::str::from_utf8(&request.body).map_err(|_| bad_request("body is not UTF-8"))?;
    if text.trim().is_empty() {
        return Err(bad_request("body must be a JSON object"));
    }
    serde_json::from_str(text).map_err(|e| bad_request(&format!("body is not JSON: {e}")))
}

/// The request's job: either the whole body is the job object, or it
/// lives under a `"job"` key (the wrapped form used when other fields
/// ride along).
fn job_of(body: &Value) -> Result<TrainJobSpec, Response> {
    job_of_with_batch(body, None)
}

/// [`job_of`] for grid-driven routes (`/v1/sweep`, `/v1/plan`), where the
/// batch size comes from the grid and may be omitted from the job object.
fn job_of_with_batch(body: &Value, default_batch: Option<usize>) -> Result<TrainJobSpec, Response> {
    let entries = body
        .as_object()
        .ok_or_else(|| bad_request("body must be a JSON object"))?;
    let job_value = serde::obj_get(entries, "job").unwrap_or(body);
    jobspec::job_from_value_with_batch(job_value, default_batch).map_err(|e| job_error_response(&e))
}

/// A string field of the body object.
fn string_field(body: &Value, field: &str) -> Result<Option<String>, Response> {
    match body.as_object().and_then(|o| serde::obj_get(o, field)) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(bad_request(&format!("`{field}` must be a string"))),
    }
}

/// Settles a submitted future into a response, mapping `Busy` and
/// estimation errors to their wire shapes.
fn settle<T>(
    submitted: Result<xmem_service::PoolFuture<Result<T, EstimateError>>, SubmitError>,
    render_ok: impl FnOnce(&T) -> String,
) -> Response
where
    T: Clone + Send,
{
    match submitted {
        Err(SubmitError::Busy) => busy_response(),
        Ok(future) => match future.wait() {
            Ok(value) => Response::json(200, render_ok(&value)),
            Err(error) => estimate_error_response(&error),
        },
    }
}

/// `POST /v1/estimate` — body: a job object (or `{"job": ..., "device":
/// "name"}`); answers the estimate on the service's default device, or on
/// the named registered device.
#[must_use]
pub fn handle_estimate(
    service: &AsyncEstimationService,
    request: &Request,
    ctx: &TraceContext,
) -> Response {
    let (deadline, body) = match (deadline_of(request), body_json(request)) {
        (Err(e), _) | (_, Err(e)) => return e,
        (Ok(d), Ok(b)) => (d, b),
    };
    let spec = match job_of(&body) {
        Ok(spec) => spec,
        Err(e) => return e,
    };
    let device = match string_field(&body, "device") {
        Ok(d) => d,
        Err(e) => return e,
    };
    let submitted = service.submit_traced(&spec, device.as_deref(), deadline, ctx);
    settle(submitted, estimate_body)
}

/// `POST /v1/matrix` — body: `{"jobs": [job, ...], "devices": ["name",
/// ...]?}`; devices default to every registered device.
#[must_use]
pub fn handle_matrix(
    service: &AsyncEstimationService,
    request: &Request,
    ctx: &TraceContext,
) -> Response {
    let (deadline, body) = match (deadline_of(request), body_json(request)) {
        (Err(e), _) | (_, Err(e)) => return e,
        (Ok(d), Ok(b)) => (d, b),
    };
    let entries = match body.as_object() {
        Some(entries) => entries,
        None => return bad_request("body must be a JSON object"),
    };
    let jobs_value = match serde::obj_get(entries, "jobs").and_then(Value::as_array) {
        Some(jobs) if !jobs.is_empty() => jobs,
        _ => return bad_request("`jobs` must be a non-empty array of job objects"),
    };
    let mut specs = Vec::with_capacity(jobs_value.len());
    for (i, job) in jobs_value.iter().enumerate() {
        match job_from_value(job) {
            Ok(spec) => specs.push(spec),
            Err(e) => return job_error_response(&format!("jobs[{i}]: {e}")),
        }
    }
    let devices: Vec<String> = match serde::obj_get(entries, "devices") {
        None | Some(Value::Null) => service.service().registry().names(),
        Some(Value::Array(items)) => {
            let mut names = Vec::with_capacity(items.len());
            for item in items {
                match item {
                    Value::Str(name) => names.push(name.clone()),
                    _ => return bad_request("`devices` must be an array of device names"),
                }
            }
            names
        }
        Some(_) => return bad_request("`devices` must be an array of device names"),
    };
    if devices.is_empty() {
        return bad_request("no devices to simulate against");
    }
    let names: Vec<&str> = devices.iter().map(String::as_str).collect();
    let submitted = service.matrix_traced(&specs, &names, deadline, ctx);
    settle(submitted, matrix_body)
}

/// `POST /v1/sweep` — body: `{"job": job, "batches": [n, ...]}`.
#[must_use]
pub fn handle_sweep(
    service: &AsyncEstimationService,
    request: &Request,
    ctx: &TraceContext,
) -> Response {
    let (deadline, body) = match (deadline_of(request), body_json(request)) {
        (Err(e), _) | (_, Err(e)) => return e,
        (Ok(d), Ok(b)) => (d, b),
    };
    let Some(entries) = body.as_object() else {
        return bad_request("body must be a JSON object");
    };
    let batches: Vec<usize> = match serde::obj_get(entries, "batches").and_then(Value::as_array) {
        Some(items) if !items.is_empty() => {
            // Duplicates collapse (first occurrence keeps its slot) —
            // repeated grid points would just repeat cache hits; zero
            // points are the jobspec range violation, same stable 422.
            let mut batches = Vec::with_capacity(items.len());
            for item in items {
                match item.as_u64().and_then(|n| usize::try_from(n).ok()) {
                    Some(0) => return job_error_response(BATCH_RANGE_ERROR),
                    Some(batch) => {
                        if !batches.contains(&batch) {
                            batches.push(batch);
                        }
                    }
                    None => return bad_request("`batches` must be positive integers"),
                }
            }
            batches
        }
        _ => return bad_request("`batches` must be a non-empty array of batch sizes"),
    };
    // The grid supplies the batch sizes, so the job object may omit
    // `batch` — the first grid point backs the draft.
    let spec = match job_of_with_batch(&body, batches.first().copied()) {
        Ok(spec) => spec,
        Err(e) => return e,
    };
    let submitted = service.sweep_traced(&spec, &batches, deadline, ctx);
    match submitted {
        Err(SubmitError::Busy) => busy_response(),
        Ok(future) => match future.wait() {
            Ok(results) => Response::json(200, sweep_body(&results)),
            Err(error) => estimate_error_response(&error),
        },
    }
}

/// `POST /v1/plan` — body: `{"job": job, "device": "name", "min": 1?,
/// "max": 1024?}`; answers admission control
/// ([`max_batch_for_device`](xmem_service::EstimationService::max_batch_for_device)).
#[must_use]
pub fn handle_plan(
    service: &AsyncEstimationService,
    request: &Request,
    ctx: &TraceContext,
) -> Response {
    let (deadline, body) = match (deadline_of(request), body_json(request)) {
        (Err(e), _) | (_, Err(e)) => return e,
        (Ok(d), Ok(b)) => (d, b),
    };
    let Some(entries) = body.as_object() else {
        return bad_request("body must be a JSON object");
    };
    let device_name = match string_field(&body, "device") {
        Ok(Some(name)) => name,
        Ok(None) => return bad_request("`device` is required"),
        Err(e) => return e,
    };
    let Some(device) = service.service().registry().get(&device_name) else {
        return estimate_error_response(&EstimateError::UnknownDevice(device_name));
    };
    let (lo, hi) = match (usize_field(entries, "min"), usize_field(entries, "max")) {
        (Ok(lo), Ok(hi)) => (lo.unwrap_or(1), hi.unwrap_or(1024)),
        (Err(e), _) | (_, Err(e)) => return bad_request(&e),
    };
    if lo < 1 || lo > hi {
        return bad_request(&format!("invalid batch range [{lo}, {hi}]"));
    }
    // The search range supplies batch sizes, so the job object may omit
    // `batch` — the range floor backs the draft.
    let spec = match job_of_with_batch(&body, Some(lo)) {
        Ok(spec) => spec,
        Err(e) => return e,
    };
    let submitted = service.plan_traced(&spec, device, lo, hi, deadline, ctx);
    settle(submitted, |max_batch| plan_body(*max_batch))
}

/// `POST /v1/best-device` — body: a job object (or `{"job": ...}`);
/// answers best-fit placement across the registered fleet.
#[must_use]
pub fn handle_best_device(
    service: &AsyncEstimationService,
    request: &Request,
    ctx: &TraceContext,
) -> Response {
    let (deadline, body) = match (deadline_of(request), body_json(request)) {
        (Err(e), _) | (_, Err(e)) => return e,
        (Ok(d), Ok(b)) => (d, b),
    };
    let spec = match job_of(&body) {
        Ok(spec) => spec,
        Err(e) => return e,
    };
    let submitted = service.placement_traced(&spec, deadline, ctx);
    settle(submitted, |placement| placement_body(placement.as_ref()))
}
