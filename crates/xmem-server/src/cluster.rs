//! The cluster tier: consistent-hash scale-out over N `xmem-server`
//! instances.
//!
//! Every node carries the same static ring ([`HashRing`] over the sorted
//! peer list), so placement needs no coordinator: each `/v1` request
//! hashes to one owner — per-batch routes (`/v1/estimate`,
//! `/v1/best-device`) by [`JobKey`], grid routes (`/v1/sweep`,
//! `/v1/plan`) by the batchless [`SweepKey`] so a whole job family
//! lands where its incremental-fit cache lives — and each
//! profile/analysis is computed exactly once cluster-wide. A node
//! receiving a request it does not own forwards it to the owner over
//! the ordinary HTTP wire: the peer protocol **is** the `/v1` protocol,
//! plus two headers — [`FORWARDED_HEADER`] (the hop guard: a forwarded
//! request is always computed locally, so routing loops are impossible
//! by construction) and [`AUTH_HEADER`] (the shared-secret ingress
//! check, mandatory the moment a peer list exists, because peer traffic
//! must not be anonymous).
//!
//! Membership is static (`--peers`); *health* is not. A forward that
//! fails transport marks the owner down and the request is answered
//! locally — correctness is unaffected (estimates are deterministic),
//! only the exactly-once economy degrades while the peer is away. A
//! background prober re-checks down peers against `GET /healthz` and
//! flips them back up. Per-peer state is exported as
//! `xmem_cluster_peer_up` on `/metrics`.

use crate::api;
use crate::client::{ClientResponse, HttpClient};
use crate::wire::{Request, Response};
use serde::Value;
use std::fmt::Write as _;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;
use xmem_runtime::TrainJobSpec;
use xmem_service::jobspec::job_from_value_with_batch;
use xmem_service::{hash_family, hash_job, HashRing, JobKey, SweepKey, TraceContext, TRACE_HEADER};

/// Shared-secret ingress header. When a node has a cluster configured,
/// every `/v1` request must carry it; `/healthz` and `/metrics` stay
/// open (probes and scrapers are read-only).
pub const AUTH_HEADER: &str = "x-xmem-auth";

/// Hop-guard header: carries the forwarding node's address. A request
/// bearing it is computed locally, never re-forwarded.
pub const FORWARDED_HEADER: &str = "x-xmem-forwarded";

/// How long a peer probe or forward connect may take.
const PEER_CONNECT_TIMEOUT: Duration = Duration::from_millis(500);

/// Read budget for a forwarded exchange: the owner may be computing a
/// cold estimate, so this bounds a *wedged* peer, not a slow one.
const FORWARD_READ_TIMEOUT: Duration = Duration::from_secs(60);

/// Static cluster membership for one node.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// This node's own ring identity — the address peers reach it at.
    pub self_addr: String,
    /// Peer ring identities (may redundantly include `self_addr`).
    pub peers: Vec<String>,
    /// The shared ingress secret.
    pub auth_token: String,
}

/// One peer's liveness + pooled connection.
#[derive(Debug)]
struct PeerState {
    addr: String,
    up: AtomicBool,
    /// The pooled forwarding connection; dropped on transport failure
    /// and re-established lazily.
    client: Mutex<Option<HttpClient>>,
}

/// A node's view of the cluster: the ring, per-peer health, and the
/// forwarding counters.
#[derive(Debug)]
pub struct ClusterState {
    ring: HashRing,
    self_index: usize,
    /// Indexed like `ring.nodes()`; the self slot's client stays unused.
    peers: Vec<PeerState>,
    auth_token: String,
    forwards_total: AtomicU64,
    forward_failures: AtomicU64,
    forwarded_served: AtomicU64,
    cell_fills: AtomicU64,
    local_fallbacks: AtomicU64,
}

impl ClusterState {
    /// Builds the node view from a static config. `self_addr` joins the
    /// ring alongside the peers (duplicates collapse).
    ///
    /// # Errors
    /// A human-readable message for an empty or self-only peer list.
    pub fn new(config: &ClusterConfig) -> Result<ClusterState, String> {
        if config.auth_token.is_empty() {
            return Err("cluster mode requires a non-empty auth token".to_string());
        }
        let mut nodes = config.peers.clone();
        nodes.push(config.self_addr.clone());
        let ring = HashRing::new(&nodes);
        if ring.len() < 2 {
            return Err("cluster mode needs at least one peer besides this node".to_string());
        }
        let self_index = ring
            .index_of(&config.self_addr)
            .expect("self_addr was added to the ring");
        let peers = ring
            .nodes()
            .iter()
            .map(|addr| PeerState {
                addr: addr.clone(),
                up: AtomicBool::new(true),
                client: Mutex::new(None),
            })
            .collect();
        Ok(ClusterState {
            ring,
            self_index,
            peers,
            auth_token: config.auth_token.clone(),
            forwards_total: AtomicU64::new(0),
            forward_failures: AtomicU64::new(0),
            forwarded_served: AtomicU64::new(0),
            cell_fills: AtomicU64::new(0),
            local_fallbacks: AtomicU64::new(0),
        })
    }

    /// The shared ring.
    #[must_use]
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// This node's index in the ring's sorted node list.
    #[must_use]
    pub fn self_index(&self) -> usize {
        self.self_index
    }

    /// Whether `request` carries the shared secret.
    #[must_use]
    pub fn authorized(&self, request: &Request) -> bool {
        request.header(AUTH_HEADER) == Some(self.auth_token.as_str())
    }

    /// Whether the ring node at `index` is believed up (self always is).
    #[must_use]
    pub fn peer_up(&self, index: usize) -> bool {
        index == self.self_index || self.peers[index].up.load(Ordering::Relaxed)
    }

    /// Counts a request that arrived with the hop-guard header — served
    /// locally on the owner's behalf of the forwarding peer.
    pub fn note_forwarded_request(&self) {
        self.forwarded_served.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts an owner-down (or forward-failed) local computation.
    pub fn note_local_fallback(&self) {
        self.local_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a local sim cell filled from a forwarded response.
    pub fn note_cell_fill(&self) {
        self.cell_fills.fetch_add(1, Ordering::Relaxed);
    }

    /// Forwards `request` verbatim to the ring node at `owner` — same
    /// method/path/body, plus the auth secret, the hop guard, the trace
    /// id (so the remote hop records under the same trace), and the
    /// propagated deadline. `None` means the exchange failed transport
    /// and the owner was marked down; the caller answers locally.
    ///
    /// `elapsed` is how long this hop has already held the request: the
    /// forwarded deadline budget is decremented by it, so a relayed
    /// request can never be granted more time than the origin has left.
    #[must_use]
    pub fn forward(
        &self,
        owner: usize,
        request: &Request,
        ctx: &TraceContext,
        elapsed: Duration,
    ) -> Option<ClientResponse> {
        let peer = &self.peers[owner];
        self.forwards_total.fetch_add(1, Ordering::Relaxed);
        let mut span = ctx.span("cluster.forward");
        let mut pooled = peer
            .client
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if pooled.is_none() {
            *pooled = connect_peer(&peer.addr);
        }
        let deadline = request
            .header(api::DEADLINE_HEADER)
            .map(|raw| match raw.parse::<u64>() {
                // Spend this hop's elapsed time before relaying the
                // budget; the remote hop answers 504 when nothing is
                // left, exactly as this hop would have.
                Ok(ms) => ms
                    .saturating_sub(u64::try_from(elapsed.as_millis()).unwrap_or(u64::MAX))
                    .to_string(),
                // Non-numeric budgets relay verbatim: the remote's
                // `deadline_of` owns the 400 shape.
                Err(_) => raw.to_string(),
            });
        let trace_id = ctx.trace_id_hex();
        let outcome = pooled.as_mut().and_then(|client| {
            let mut headers: Vec<(&str, &str)> = vec![
                ("content-type", "application/json"),
                (AUTH_HEADER, &self.auth_token),
                (FORWARDED_HEADER, self.ring.node(self.self_index)),
            ];
            if let Some(ms) = &deadline {
                headers.push((api::DEADLINE_HEADER, ms));
            }
            if let Some(id) = &trace_id {
                headers.push((TRACE_HEADER, id));
            }
            client
                .request(&request.method, request.path(), &headers, &request.body)
                .ok()
        });
        match outcome {
            Some(response) => {
                span.set_outcome("forwarded");
                Some(response)
            }
            None => {
                *pooled = None;
                peer.up.store(false, Ordering::Relaxed);
                self.forward_failures.fetch_add(1, Ordering::Relaxed);
                span.set_outcome("fallback");
                None
            }
        }
    }

    /// Re-probes every down peer with `GET /healthz` on a fresh
    /// short-timeout connection, flipping the ones that answer back up.
    pub fn probe_down_peers(&self) {
        for (index, peer) in self.peers.iter().enumerate() {
            if index == self.self_index || peer.up.load(Ordering::Relaxed) {
                continue;
            }
            if probe_healthz(&peer.addr) {
                peer.up.store(true, Ordering::Relaxed);
            }
        }
    }

    /// The cluster block of the `/metrics` exposition.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(1024);
        let _ = writeln!(out, "# HELP xmem_cluster_peer_up Peer liveness by address");
        let _ = writeln!(out, "# TYPE xmem_cluster_peer_up gauge");
        for (index, peer) in self.peers.iter().enumerate() {
            let _ = writeln!(
                out,
                "xmem_cluster_peer_up{{peer=\"{}\"}} {}",
                peer.addr,
                u64::from(self.peer_up(index))
            );
        }
        let counter = |out: &mut String, name: &str, help: &str, value: &AtomicU64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {}", value.load(Ordering::Relaxed));
        };
        counter(
            &mut out,
            "xmem_cluster_forwards_total",
            "Requests forwarded to their ring owner",
            &self.forwards_total,
        );
        counter(
            &mut out,
            "xmem_cluster_forward_failures_total",
            "Forwards that failed transport (owner marked down)",
            &self.forward_failures,
        );
        counter(
            &mut out,
            "xmem_cluster_forwarded_requests_total",
            "Requests served locally on behalf of a forwarding peer",
            &self.forwarded_served,
        );
        counter(
            &mut out,
            "xmem_cluster_cell_fills_total",
            "Local sim cells filled from forwarded responses",
            &self.cell_fills,
        );
        counter(
            &mut out,
            "xmem_cluster_local_fallbacks_total",
            "Non-owned requests computed locally (owner down)",
            &self.local_fallbacks,
        );
        out
    }
}

/// The `(job, ring hash)` a `/v1` body routes by, when the route is
/// cluster-placed at all: per-batch routes hash the [`JobKey`], grid
/// routes the [`SweepKey`]. `None` for unplaced routes and malformed
/// bodies — malformed requests are answered locally so the error shape
/// stays byte-identical to a single-node server.
#[must_use]
pub fn route_placement(path: &str, body: &Value) -> Option<(TrainJobSpec, u64)> {
    let grid = matches!(path, "/v1/sweep" | "/v1/plan");
    let per_batch = matches!(path, "/v1/estimate" | "/v1/best-device");
    if !grid && !per_batch {
        return None;
    }
    let entries = body.as_object()?;
    let job_value = serde::obj_get(entries, "job").unwrap_or(body);
    // Grid routes may omit `batch` (the grid supplies it); the ring hash
    // ignores the placeholder because [`SweepKey`] is batchless.
    let spec = job_from_value_with_batch(job_value, grid.then_some(1)).ok()?;
    let hash = if grid {
        hash_family(&SweepKey::of(&spec))
    } else {
        hash_job(&JobKey::of(&spec))
    };
    Some((spec, hash))
}

/// Converts a forwarded peer's response into the wire response relayed
/// to the client, preserving the backpressure contract (`Retry-After`).
#[must_use]
pub fn relay_response(response: &ClientResponse) -> Response {
    let mut relayed = Response::json(response.status, response.text().into_owned());
    if let Some(retry) = response.header("retry-after") {
        relayed = relayed.with_header("retry-after", retry);
    }
    relayed
}

fn resolve(addr: &str) -> Option<SocketAddr> {
    addr.to_socket_addrs().ok()?.next()
}

/// Connects to a peer within the probe timeout, returning a client with
/// the forward read budget applied.
fn connect_peer(addr: &str) -> Option<HttpClient> {
    // Establish reachability with a bounded connect first: a black-holed
    // peer must not wedge the forwarding worker for the OS default.
    let resolved = resolve(addr)?;
    let probe = TcpStream::connect_timeout(&resolved, PEER_CONNECT_TIMEOUT).ok()?;
    drop(probe);
    let client = HttpClient::connect(resolved).ok()?;
    client.set_read_timeout(Some(FORWARD_READ_TIMEOUT)).ok()?;
    Some(client)
}

/// One bounded `GET /healthz` exchange on a throwaway connection.
fn probe_healthz(addr: &str) -> bool {
    let Some(resolved) = resolve(addr) else {
        return false;
    };
    let Ok(mut stream) = TcpStream::connect_timeout(&resolved, PEER_CONNECT_TIMEOUT) else {
        return false;
    };
    let _ = stream.set_read_timeout(Some(PEER_CONNECT_TIMEOUT));
    let request = format!("GET /healthz HTTP/1.1\r\nhost: {addr}\r\nconnection: close\r\n\r\n");
    if stream.write_all(request.as_bytes()).is_err() {
        return false;
    }
    let mut head = [0u8; 64];
    match stream.read(&mut head) {
        Ok(n) if n > 0 => head[..n].starts_with(b"HTTP/1.1 200"),
        _ => false,
    }
}

/// A ring-aware client: routes each request to its owner and fails over
/// along the ring when a node is unreachable.
///
/// The retry budget is bounded — each distinct node is tried at most
/// once per request — and a transport failure *after* response bytes
/// arrived is **not** failed over (the dead node may have acted on the
/// request); it surfaces, exactly like [`HttpClient`].
#[derive(Debug)]
pub struct ClusterClient {
    ring: HashRing,
    auth_token: Option<String>,
    /// Pooled per-node connections, indexed like `ring.nodes()`.
    clients: Vec<Option<HttpClient>>,
    failovers: u64,
    /// Rotates `get` traffic (unplaced routes) across nodes.
    next_get: usize,
}

impl ClusterClient {
    /// A client over `nodes` (every ring member), authenticating with
    /// `auth_token` when given.
    #[must_use]
    pub fn new<S: AsRef<str>>(nodes: &[S], auth_token: Option<&str>) -> ClusterClient {
        let ring = HashRing::new(nodes);
        let clients = (0..ring.len()).map(|_| None).collect();
        ClusterClient {
            ring,
            auth_token: auth_token.map(str::to_string),
            clients,
            failovers: 0,
            next_get: 0,
        }
    }

    /// Times a node was skipped for the next ring member after a
    /// transport failure.
    #[must_use]
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// The ring this client routes by.
    #[must_use]
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// POSTs `json` to `path` on the owning node, walking the ring on
    /// transport failure. Unplaced paths (`/v1/matrix`, `/v1/shutdown`)
    /// start at an arbitrary node and still fail over.
    ///
    /// # Errors
    /// The last node's transport error once every ring member failed.
    pub fn post_json(&mut self, path: &str, json: &str) -> std::io::Result<ClientResponse> {
        let body: Option<Value> = serde_json::from_str(json).ok();
        let order = match body.as_ref().and_then(|b| route_placement(path, b)) {
            Some((_, hash)) => self.ring.successors(hash),
            None => (0..self.ring.len()).collect(),
        };
        self.try_nodes(&order, |client, token| {
            let mut headers = vec![("content-type", "application/json")];
            if let Some(token) = token {
                headers.push((AUTH_HEADER, token));
            }
            client.request("POST", path, &headers, json.as_bytes())
        })
    }

    /// GETs `path` from any node, rotating across the ring and failing
    /// over on transport errors.
    ///
    /// # Errors
    /// The last node's transport error once every ring member failed.
    pub fn get(&mut self, path: &str) -> std::io::Result<ClientResponse> {
        let start = self.next_get;
        self.next_get = (self.next_get + 1) % self.ring.len().max(1);
        let order: Vec<usize> = (0..self.ring.len())
            .map(|i| (start + i) % self.ring.len())
            .collect();
        self.try_nodes(&order, |client, token| {
            let mut headers = Vec::new();
            if let Some(token) = token {
                headers.push((AUTH_HEADER, token));
            }
            client.request("GET", path, &headers, b"")
        })
    }

    /// Walks `order`, reconnecting lazily, counting failovers past the
    /// first node, and surfacing the final error when all fail.
    fn try_nodes(
        &mut self,
        order: &[usize],
        mut exchange: impl FnMut(&mut HttpClient, Option<&str>) -> std::io::Result<ClientResponse>,
    ) -> std::io::Result<ClientResponse> {
        let mut last_error = None;
        for (attempt, &index) in order.iter().enumerate() {
            if self.clients[index].is_none() {
                match HttpClient::connect(self.ring.node(index)) {
                    Ok(client) => self.clients[index] = Some(client),
                    Err(error) => {
                        if attempt + 1 < order.len() {
                            self.failovers += 1;
                        }
                        last_error = Some(error);
                        continue;
                    }
                }
            }
            let client = self.clients[index].as_mut().expect("just ensured");
            match exchange(client, self.auth_token.as_deref()) {
                Ok(response) => return Ok(response),
                Err(error) => {
                    self.clients[index] = None;
                    if is_failoverable(&error) && attempt + 1 < order.len() {
                        self.failovers += 1;
                        last_error = Some(error);
                        continue;
                    }
                    return Err(error);
                }
            }
        }
        Err(last_error.unwrap_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::NotConnected, "cluster has no nodes")
        }))
    }
}

/// Whether an exchange error is safe to fail over: pure transport
/// failures where no response bytes arrived. `InvalidData` (a garbled
/// response) means the node *did* answer — surface it.
fn is_failoverable(error: &std::io::Error) -> bool {
    !matches!(error.kind(), std::io::ErrorKind::InvalidData)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> ClusterConfig {
        ClusterConfig {
            self_addr: "127.0.0.1:7502".to_string(),
            peers: vec!["127.0.0.1:7501".to_string(), "127.0.0.1:7503".to_string()],
            auth_token: "secret".to_string(),
        }
    }

    #[test]
    fn cluster_state_rejects_degenerate_configs() {
        let mut empty_token = config();
        empty_token.auth_token = String::new();
        assert!(ClusterState::new(&empty_token).is_err());
        let lonely = ClusterConfig {
            self_addr: "127.0.0.1:7501".to_string(),
            peers: vec!["127.0.0.1:7501".to_string()],
            auth_token: "secret".to_string(),
        };
        assert!(ClusterState::new(&lonely).is_err());
    }

    #[test]
    fn self_joins_the_ring_once() {
        let state = ClusterState::new(&config()).expect("valid config");
        assert_eq!(state.ring().len(), 3);
        assert_eq!(state.ring().node(state.self_index()), "127.0.0.1:7502");
    }

    #[test]
    fn route_placement_targets_the_right_key_space() {
        let estimate: Value = serde_json::from_str(
            r#"{"model":"MobeNetV3Small","optimizer":"Adam","batch":4,"iterations":2}"#,
        )
        .expect("json");
        let sweep: Value = serde_json::from_str(
            r#"{"job":{"model":"MobeNetV3Small","optimizer":"Adam","iterations":2},"batches":[2,4]}"#,
        )
        .expect("json");
        let (_, estimate_hash) =
            route_placement("/v1/estimate", &estimate).expect("estimate places");
        let (_, sweep_hash) = route_placement("/v1/sweep", &sweep).expect("sweep places");
        // Grid routes hash the batchless family: a different batch in
        // the estimate body moves the job hash but never the sweep hash.
        let other: Value = serde_json::from_str(
            r#"{"model":"MobeNetV3Small","optimizer":"Adam","batch":32,"iterations":2}"#,
        )
        .expect("json");
        let (_, other_hash) = route_placement("/v1/estimate", &other).expect("estimate places");
        assert_ne!(estimate_hash, other_hash);
        let sweep_other: Value = serde_json::from_str(
            r#"{"job":{"model":"MobeNetV3Small","optimizer":"Adam","batch":32,"iterations":2},"batches":[8]}"#,
        )
        .expect("json");
        let (_, sweep_other_hash) =
            route_placement("/v1/sweep", &sweep_other).expect("sweep places");
        assert_eq!(sweep_hash, sweep_other_hash);
        // Unplaced and malformed bodies stay local.
        assert!(route_placement("/v1/matrix", &estimate).is_none());
        let broken: Value = serde_json::from_str(r#"{"model":"nope"}"#).expect("json");
        assert!(route_placement("/v1/estimate", &broken).is_none());
    }

    #[test]
    fn probe_flips_a_down_peer_back_up_when_healthz_answers() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind probe target");
        let addr = listener.local_addr().expect("local addr").to_string();
        let serve = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept probe");
            let mut buf = [0u8; 512];
            let _ = stream.read(&mut buf);
            let _ = stream
                .write_all(b"HTTP/1.1 200 OK\r\ncontent-length: 0\r\nconnection: close\r\n\r\n");
        });
        let state = ClusterState::new(&ClusterConfig {
            self_addr: "127.0.0.1:1".to_string(),
            peers: vec![addr.clone()],
            auth_token: "secret".to_string(),
        })
        .expect("valid config");
        let peer = state.ring().index_of(&addr).expect("peer in ring");
        state.peers[peer].up.store(false, Ordering::Relaxed);
        assert!(!state.peer_up(peer));
        state.probe_down_peers();
        assert!(state.peer_up(peer), "an answering peer must flip back up");
        serve.join().expect("probe target thread");
    }

    /// Serves `hops` forwarded exchanges on a fresh listener, sending
    /// each captured request head (as text) down the channel.
    fn capture_forwards(
        hops: usize,
    ) -> (
        String,
        std::sync::mpsc::Receiver<String>,
        std::thread::JoinHandle<()>,
    ) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind fake owner");
        let addr = listener.local_addr().expect("local addr").to_string();
        let (tx, rx) = std::sync::mpsc::channel();
        let serve = std::thread::spawn(move || {
            let mut served = 0;
            while served < hops {
                let (mut stream, _) = listener.accept().expect("accept forward");
                let mut seen = Vec::new();
                let mut buf = [0u8; 1024];
                // The forwarded body is tiny; read until the head
                // terminator has arrived (the test only inspects headers).
                while !seen.windows(4).any(|w| w == b"\r\n\r\n") {
                    let n = stream.read(&mut buf).expect("read forward");
                    if n == 0 {
                        break;
                    }
                    seen.extend_from_slice(&buf[..n]);
                }
                if seen.is_empty() {
                    // `connect_peer` reachability probe: a bare connect
                    // that closes without sending a request.
                    continue;
                }
                tx.send(String::from_utf8_lossy(&seen).into_owned())
                    .expect("report head");
                let _ = stream.write_all(
                    b"HTTP/1.1 200 OK\r\ncontent-type: application/json\r\n\
                      content-length: 2\r\nconnection: close\r\n\r\n{}",
                );
                served += 1;
            }
        });
        (addr, rx, serve)
    }

    /// The header a captured request head carried, if any.
    fn head_header(head: &str, name: &str) -> Option<String> {
        head.lines().find_map(|line| {
            let (n, v) = line.split_once(':')?;
            (n.eq_ignore_ascii_case(name)).then(|| v.trim().to_string())
        })
    }

    #[test]
    fn forward_decrements_the_deadline_budget_by_time_already_spent() {
        let (addr, rx, serve) = capture_forwards(3);
        let state = ClusterState::new(&ClusterConfig {
            self_addr: "127.0.0.1:1".to_string(),
            peers: vec![addr.clone()],
            auth_token: "secret".to_string(),
        })
        .expect("valid config");
        let owner = state.ring().index_of(&addr).expect("owner in ring");
        let request_with_deadline = |deadline: &str| Request {
            method: "POST".to_string(),
            target: "/v1/estimate".to_string(),
            headers: vec![
                ("content-type".to_string(), "application/json".to_string()),
                (api::DEADLINE_HEADER.to_string(), deadline.to_string()),
            ],
            body: b"{}".to_vec(),
            http11: true,
        };
        let ctx = TraceContext::disabled();

        // 40 of the 50ms budget already burned at this hop: the peer
        // must see only the remaining 10.
        let answer = state.forward(
            owner,
            &request_with_deadline("50"),
            &ctx,
            Duration::from_millis(40),
        );
        assert!(answer.is_some(), "fake owner answered");
        let head = rx.recv().expect("captured head");
        assert_eq!(
            head_header(&head, api::DEADLINE_HEADER).as_deref(),
            Some("10"),
            "head: {head}"
        );

        // A near-expired budget saturates at zero rather than
        // underflowing or vanishing — the remote still sees the header
        // and issues its own 504.
        let _ = state.forward(
            owner,
            &request_with_deadline("50"),
            &ctx,
            Duration::from_millis(75),
        );
        let head = rx.recv().expect("captured head");
        assert_eq!(
            head_header(&head, api::DEADLINE_HEADER).as_deref(),
            Some("0"),
            "head: {head}"
        );

        // A non-numeric value relays verbatim: the remote's own parser
        // owns the 400.
        let _ = state.forward(
            owner,
            &request_with_deadline("soonish"),
            &ctx,
            Duration::from_millis(5),
        );
        let head = rx.recv().expect("captured head");
        assert_eq!(
            head_header(&head, api::DEADLINE_HEADER).as_deref(),
            Some("soonish"),
            "head: {head}"
        );
        serve.join().expect("fake owner thread");
    }

    #[test]
    fn down_peers_fail_fast_and_probe_does_not_resurrect_them() {
        // 127.0.0.1 with a (very likely) unbound port: connect fails.
        let state = ClusterState::new(&config()).expect("valid config");
        let other = (state.self_index() + 1) % state.ring().len();
        assert!(state.peer_up(other), "peers start up");
        state.peers[other].up.store(false, Ordering::Relaxed);
        state.probe_down_peers();
        assert!(!state.peer_up(other), "no listener, stays down");
        let metrics = state.render_prometheus();
        assert!(metrics.contains("xmem_cluster_peer_up"), "{metrics}");
        assert!(
            metrics.contains("} 0"),
            "down peer must render 0: {metrics}"
        );
    }
}
