//! HTTP/1.1 wire protocol: an incremental request parser and a response
//! writer, dependency-free over byte buffers.
//!
//! The parser is **incremental** — feed it whatever `read` returned and
//! poll for complete requests — and **bounded**: the request head, any
//! single line, the header count and the declared body size all have hard
//! limits, each mapped to the conventional status code
//! ([`WireError::status`]: `431` for oversized heads/lines/header counts,
//! `413` for oversized bodies, `400` for anything malformed, `501` for
//! unimplemented transfer encodings). Malformed input of any shape is an
//! `Err`, never a panic: every byte of the buffer is treated as
//! adversarial.
//!
//! Pipelining falls out of the design: leftover buffered bytes after a
//! complete request are the start of the next one, so `poll` can be
//! called in a loop.

use std::fmt;

/// Hard limits on one request's wire footprint.
#[derive(Debug, Clone)]
pub struct WireLimits {
    /// Request line + all headers, including separators.
    pub max_head_bytes: usize,
    /// Any single line (request line or one header).
    pub max_line_bytes: usize,
    /// Number of header lines.
    pub max_headers: usize,
    /// Declared `Content-Length`.
    pub max_body_bytes: usize,
}

impl Default for WireLimits {
    /// 16 KiB heads, 8 KiB lines, 64 headers, 1 MiB bodies — generous for
    /// job-spec traffic, stingy for abuse.
    fn default() -> Self {
        WireLimits {
            max_head_bytes: 16 * 1024,
            max_line_bytes: 8 * 1024,
            max_headers: 64,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// A wire-level request failure, mapped to the status code the connection
/// should answer with before closing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The request head (or one of its lines, or the header count)
    /// exceeded a limit → `431 Request Header Fields Too Large`.
    HeadTooLarge(String),
    /// The declared body exceeds the body limit → `413 Content Too
    /// Large`.
    BodyTooLarge(u64),
    /// Anything else that is not HTTP/1.x → `400 Bad Request`.
    Malformed(String),
    /// A syntactically valid request using a transfer encoding this
    /// server does not speak → `501 Not Implemented`.
    Unsupported(String),
}

impl WireError {
    /// The status code and reason phrase this error answers with.
    #[must_use]
    pub fn status(&self) -> (u16, &'static str) {
        match self {
            WireError::HeadTooLarge(_) => (431, "Request Header Fields Too Large"),
            WireError::BodyTooLarge(_) => (413, "Content Too Large"),
            WireError::Malformed(_) => (400, "Bad Request"),
            WireError::Unsupported(_) => (501, "Not Implemented"),
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::HeadTooLarge(what) => write!(f, "request head too large: {what}"),
            WireError::BodyTooLarge(declared) => {
                write!(f, "declared body of {declared} bytes exceeds the limit")
            }
            WireError::Malformed(what) => write!(f, "malformed request: {what}"),
            WireError::Unsupported(what) => write!(f, "unsupported: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, as sent (case-sensitive per RFC 9110).
    pub method: String,
    /// Request target: path plus optional query, exactly as sent.
    pub target: String,
    /// Header `(name, value)` pairs, names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless a `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// Whether the request line said `HTTP/1.1` (vs `HTTP/1.0`).
    pub http11: bool,
}

impl Request {
    /// The first value of header `name` (ASCII case-insensitive).
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The target's path component (the target without its query string).
    #[must_use]
    pub fn path(&self) -> &str {
        self.target
            .split_once('?')
            .map_or(self.target.as_str(), |(path, _)| path)
    }

    /// Whether the connection should stay open after this exchange:
    /// HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close, and an
    /// explicit `Connection` header overrides either way.
    #[must_use]
    pub fn wants_keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => false,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
            _ => self.http11,
        }
    }
}

/// Incremental request parser: feed bytes, poll complete requests.
#[derive(Debug)]
pub struct RequestParser {
    limits: WireLimits,
    buf: Vec<u8>,
    /// How far `buf` has already been scanned for the head terminator —
    /// keeps head detection linear when a peer trickles bytes (each poll
    /// resumes where the last one stopped instead of rescanning from 0).
    head_scanned: usize,
    /// Parsed head of the request whose body is still arriving.
    pending: Option<(Request, usize)>,
    /// Set when a freshly parsed head carries `Expect: 100-continue` and
    /// its body has not fully arrived — the connection handler must send
    /// an interim `100 Continue` before blocking for more bytes, or
    /// expectation-honouring clients stall until the idle timeout.
    /// One-shot: cleared by [`take_continue`](Self::take_continue) and
    /// when the request completes.
    needs_continue: bool,
}

impl RequestParser {
    /// A parser enforcing `limits`.
    #[must_use]
    pub fn new(limits: WireLimits) -> Self {
        RequestParser {
            limits,
            buf: Vec::new(),
            head_scanned: 0,
            pending: None,
            needs_continue: false,
        }
    }

    /// Appends raw bytes from the connection.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Whether bytes of an incomplete request are buffered — i.e. the
    /// peer is mid-request. Used by graceful shutdown to decide whether a
    /// quiet connection can be closed or must be drained first.
    #[must_use]
    pub fn mid_request(&self) -> bool {
        self.pending.is_some() || !self.buf.is_empty()
    }

    /// Extracts the next complete request, if the buffer holds one.
    ///
    /// # Errors
    /// Any [`WireError`]; the connection should answer with
    /// [`WireError::status`] and close. The parser is not usable after an
    /// error.
    pub fn poll(&mut self) -> Result<Option<Request>, WireError> {
        if self.pending.is_none() {
            let Some(head_len) = self.find_head_end()? else {
                return Ok(None);
            };
            self.head_scanned = 0;
            let head: Vec<u8> = self.buf.drain(..head_len + 4).collect();
            let request = self.parse_head(&head[..head_len])?;
            let body_len = self.body_length(&request)?;
            self.needs_continue = self.buf.len() < body_len
                && request
                    .header("expect")
                    .is_some_and(|v| v.eq_ignore_ascii_case("100-continue"));
            self.pending = Some((request, body_len));
        }
        let (_, body_len) = self.pending.as_ref().expect("pending head");
        if self.buf.len() < *body_len {
            return Ok(None);
        }
        let (mut request, body_len) = self.pending.take().expect("pending head");
        self.needs_continue = false;
        request.body = self.buf.drain(..body_len).collect();
        Ok(Some(request))
    }

    /// Whether the pending request is owed an interim `100 Continue`,
    /// clearing the flag (the caller sends the interim response exactly
    /// once per request).
    #[must_use]
    pub fn take_continue(&mut self) -> bool {
        std::mem::take(&mut self.needs_continue)
    }

    /// Offset of the `\r\n\r\n` head terminator, or `None` if it has not
    /// arrived (checking the head-size limit either way). Resumes the
    /// scan just before where the previous call left off (the terminator
    /// can straddle the boundary by up to 3 bytes), so repeated polls
    /// over a trickling peer stay O(bytes), not O(bytes²).
    fn find_head_end(&mut self) -> Result<Option<usize>, WireError> {
        let start = self.head_scanned.saturating_sub(3);
        let end = self.buf[start..]
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .map(|i| start + i);
        self.head_scanned = self.buf.len();
        match end {
            Some(i) if i + 4 > self.limits.max_head_bytes => {
                Err(WireError::HeadTooLarge(format!("{} byte head", i + 4)))
            }
            Some(i) => Ok(Some(i)),
            None if self.buf.len() > self.limits.max_head_bytes => {
                Err(WireError::HeadTooLarge(format!(
                    "more than {} bytes without a header terminator",
                    self.limits.max_head_bytes
                )))
            }
            None => Ok(None),
        }
    }

    fn parse_head(&self, head: &[u8]) -> Result<Request, WireError> {
        let head = std::str::from_utf8(head)
            .map_err(|_| WireError::Malformed("head is not UTF-8".to_string()))?;
        let mut lines = head.split("\r\n");
        let request_line = lines.next().unwrap_or("");
        if request_line.len() > self.limits.max_line_bytes {
            return Err(WireError::HeadTooLarge("request line".to_string()));
        }
        let mut parts = request_line.split(' ');
        let (method, target, version) =
            match (parts.next(), parts.next(), parts.next(), parts.next()) {
                (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
                _ => {
                    return Err(WireError::Malformed(format!(
                        "bad request line `{request_line}`"
                    )))
                }
            };
        let http11 = match version {
            "HTTP/1.1" => true,
            "HTTP/1.0" => false,
            other => return Err(WireError::Malformed(format!("bad version `{other}`"))),
        };
        let mut headers = Vec::new();
        for line in lines {
            if line.len() > self.limits.max_line_bytes {
                return Err(WireError::HeadTooLarge("header line".to_string()));
            }
            if headers.len() >= self.limits.max_headers {
                return Err(WireError::HeadTooLarge(format!(
                    "more than {} headers",
                    self.limits.max_headers
                )));
            }
            let Some((name, value)) = line.split_once(':') else {
                return Err(WireError::Malformed(format!("bad header `{line}`")));
            };
            if name.is_empty() || name.contains(' ') || name.contains('\t') {
                return Err(WireError::Malformed(format!("bad header name `{name}`")));
            }
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }
        Ok(Request {
            method: method.to_string(),
            target: target.to_string(),
            headers,
            body: Vec::new(),
            http11,
        })
    }

    /// The body length a parsed head declares, validated against the
    /// limits.
    fn body_length(&self, request: &Request) -> Result<usize, WireError> {
        if request.header("transfer-encoding").is_some() {
            return Err(WireError::Unsupported(
                "transfer-encoding (send a Content-Length body)".to_string(),
            ));
        }
        let mut declared: Option<u64> = None;
        for (name, value) in &request.headers {
            if name == "content-length" {
                let parsed: u64 = value
                    .parse()
                    .map_err(|_| WireError::Malformed(format!("bad content-length `{value}`")))?;
                if declared.is_some_and(|prior| prior != parsed) {
                    return Err(WireError::Malformed(
                        "conflicting content-length headers".to_string(),
                    ));
                }
                declared = Some(parsed);
            }
        }
        let declared = declared.unwrap_or(0);
        if declared > self.limits.max_body_bytes as u64 {
            return Err(WireError::BodyTooLarge(declared));
        }
        usize::try_from(declared).map_err(|_| WireError::BodyTooLarge(declared))
    }
}

/// The reason phrase for a status code this server emits.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        401 => "Unauthorized",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Content Too Large",
        422 => "Unprocessable Content",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// A response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers beyond the always-emitted `content-type`,
    /// `content-length` and `connection`.
    pub headers: Vec<(String, String)>,
    /// MIME type of the body.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    #[must_use]
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            headers: Vec::new(),
            content_type: "application/json",
            body: body.into_bytes(),
        }
    }

    /// A plain-text response.
    #[must_use]
    pub fn text(status: u16, body: String) -> Self {
        Response {
            status,
            headers: Vec::new(),
            content_type: "text/plain; charset=utf-8",
            body: body.into_bytes(),
        }
    }

    /// Adds a header.
    #[must_use]
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// Serializes the response; `keep_alive` decides the `connection`
    /// header. Deliberately emits no `date` header, so a given payload's
    /// bytes are deterministic (the loopback tests compare them
    /// byte-for-byte against directly computed results).
    #[must_use]
    pub fn to_bytes(&self, keep_alive: bool) -> Vec<u8> {
        let mut out = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        )
        .into_bytes();
        for (name, value) in &self.headers {
            out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }
}

/// The canned response (plus close) a [`WireError`] answers with.
#[must_use]
pub fn error_response(error: &WireError) -> Response {
    let (status, _) = error.status();
    let body = format!(
        "{{\"error\":{{\"kind\":\"wire\",\"message\":{}}}}}",
        json_string(&error.to_string())
    );
    Response::json(status, body)
}

/// Minimal JSON string escaping for hand-assembled error bodies.
#[must_use]
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(bytes: &[u8]) -> Result<Vec<Request>, WireError> {
        let mut parser = RequestParser::new(WireLimits::default());
        parser.feed(bytes);
        let mut out = Vec::new();
        while let Some(request) = parser.poll()? {
            out.push(request);
        }
        Ok(out)
    }

    #[test]
    fn parses_a_simple_get() {
        let requests = parse_all(b"GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n").unwrap();
        assert_eq!(requests.len(), 1);
        assert_eq!(requests[0].method, "GET");
        assert_eq!(requests[0].path(), "/healthz");
        assert!(requests[0].wants_keep_alive());
        assert!(requests[0].body.is_empty());
    }

    #[test]
    fn parses_incrementally_across_arbitrary_splits() {
        let raw = b"POST /v1/estimate HTTP/1.1\r\ncontent-length: 4\r\n\r\nwxyz";
        for split in 0..raw.len() {
            let mut parser = RequestParser::new(WireLimits::default());
            parser.feed(&raw[..split]);
            // Whatever has arrived so far is at most a partial request.
            let early = parser.poll().unwrap();
            if let Some(r) = early {
                panic!("complete request after {split} bytes: {r:?}");
            }
            parser.feed(&raw[split..]);
            let request = parser.poll().unwrap().expect("complete");
            assert_eq!(request.body, b"wxyz");
            assert!(!parser.mid_request());
        }
    }

    #[test]
    fn byte_by_byte_trickle_still_parses_and_resumes_the_scan() {
        let raw = b"POST /v1/estimate HTTP/1.1\r\nx: y\r\ncontent-length: 3\r\n\r\nabcGET /next HTTP/1.1\r\n\r\n";
        let mut parser = RequestParser::new(WireLimits::default());
        let mut parsed = Vec::new();
        for &byte in raw.iter() {
            parser.feed(&[byte]);
            while let Some(request) = parser.poll().unwrap() {
                parsed.push(request);
            }
        }
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].body, b"abc");
        assert_eq!(parsed[1].target, "/next");
    }

    #[test]
    fn pipelined_requests_come_out_in_order() {
        let requests = parse_all(
            b"GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\ncontent-length: 2\r\n\r\nhi\
              GET /c HTTP/1.1\r\nconnection: close\r\n\r\n",
        )
        .unwrap();
        assert_eq!(requests.len(), 3);
        assert_eq!(requests[0].target, "/a");
        assert_eq!(requests[1].body, b"hi");
        assert!(!requests[2].wants_keep_alive());
    }

    #[test]
    fn oversized_heads_and_bodies_are_bounded() {
        let huge_header = format!("GET / HTTP/1.1\r\nx: {}\r\n\r\n", "a".repeat(20_000));
        assert!(matches!(
            parse_all(huge_header.as_bytes()),
            Err(WireError::HeadTooLarge(_))
        ));
        // Head never terminates: the limit still trips.
        let mut parser = RequestParser::new(WireLimits::default());
        parser.feed("GET / HTTP/1.1\r\n".as_bytes());
        parser.feed("x: y\r\n".repeat(4000).as_bytes());
        assert!(matches!(parser.poll(), Err(WireError::HeadTooLarge(_))));
        // A huge declared body is refused before any of it arrives.
        assert!(matches!(
            parse_all(b"POST / HTTP/1.1\r\ncontent-length: 99999999999\r\n\r\n"),
            Err(WireError::BodyTooLarge(99_999_999_999))
        ));
    }

    #[test]
    fn header_count_limit_trips() {
        let mut head = String::from("GET / HTTP/1.1\r\n");
        for i in 0..100 {
            head.push_str(&format!("h{i}: v\r\n"));
        }
        head.push_str("\r\n");
        assert!(matches!(
            parse_all(head.as_bytes()),
            Err(WireError::HeadTooLarge(_))
        ));
    }

    #[test]
    fn garbage_is_an_error_not_a_panic() {
        for garbage in [
            &b"\x00\x01\x02\x03\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET / HTTP/2\r\n\r\n",
            b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n",
            b"GET / HTTP/1.1\r\nbad name: v\r\n\r\n",
            b"POST / HTTP/1.1\r\ncontent-length: banana\r\n\r\n",
            b"POST / HTTP/1.1\r\ncontent-length: 2\r\ncontent-length: 5\r\n\r\n",
            b"\xff\xfe / HTTP/1.1\r\n\r\n",
        ] {
            let result = parse_all(garbage);
            assert!(result.is_err(), "{garbage:?} parsed: {result:?}");
        }
    }

    #[test]
    fn transfer_encoding_is_unsupported_not_misread() {
        let err = parse_all(b"POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n").unwrap_err();
        assert_eq!(err.status().0, 501);
    }

    #[test]
    fn zero_length_body_completes_immediately() {
        let requests =
            parse_all(b"POST /v1/estimate HTTP/1.1\r\ncontent-length: 0\r\n\r\n").unwrap();
        assert_eq!(requests.len(), 1);
        assert!(requests[0].body.is_empty());
    }

    #[test]
    fn response_bytes_are_deterministic_and_sized() {
        let response = Response::json(200, "{\"ok\":true}".to_string());
        let a = response.to_bytes(true);
        let b = response.to_bytes(true);
        assert_eq!(a, b);
        let text = String::from_utf8(a).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(!text.contains("date:"), "dates would break determinism");
    }

    #[test]
    fn http10_defaults_to_close() {
        let requests = parse_all(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!requests[0].wants_keep_alive());
        let requests = parse_all(b"GET / HTTP/1.0\r\nconnection: keep-alive\r\n\r\n").unwrap();
        assert!(requests[0].wants_keep_alive());
    }
}
