//! The serving loop: a `std::net` acceptor thread feeding a bounded pool
//! of connection workers, with keep-alive, per-request deadlines,
//! backpressure, and graceful drain.
//!
//! # Threading model
//!
//! One acceptor thread accepts sockets and hands them to a bounded queue;
//! `ServerConfig::workers` connection workers each own one connection at
//! a time and run its keep-alive loop (parse → route → estimate → write).
//! Estimation itself is submitted to the shared
//! [`AsyncEstimationService`], so the expensive work rides the service's
//! own worker pool and cache layers; connection workers mostly block on
//! futures. When the accept queue is full the acceptor answers `503`
//! directly and closes — load has a hard edge instead of an unbounded
//! backlog.
//!
//! # Graceful shutdown
//!
//! [`ServerHandle::shutdown`] (or `POST /v1/shutdown` on the wire — the
//! SIGTERM-equivalent for environments that deliver signals out of band)
//! flips the drain flag: the acceptor stops accepting, and every worker
//! finishes the request it is serving, answers it with
//! `connection: close`, and exits; a mid-transmission request gets up to
//! [`ServerConfig::drain_timeout`] to finish arriving. In-flight work is
//! never abandoned — the drain deadline bounds *waiting for bytes*, not
//! the completion of accepted requests. The one thing a drain does shed
//! is pipelined requests queued *behind* the one being answered: the
//! `connection: close` on that answer tells the client exactly which
//! requests went unprocessed (standard HTTP semantics — safe to retry
//! elsewhere).

use crate::api;
use crate::cluster::{self, ClusterConfig, ClusterState};
use crate::metrics::{Route, ServerMetrics};
use crate::wire::{self, RequestParser, Response, WireLimits};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use xmem_service::{
    AsyncEstimationService, Telemetry, TelemetryConfig, TraceContext, TRACE_HEADER,
};

/// How often blocked reads wake up to re-check the drain flag and idle
/// budget.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// How often the cluster prober re-checks down peers.
const PROBE_INTERVAL: Duration = Duration::from_millis(250);

/// Configuration of an [`ServerHandle`]-managed HTTP server.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Connection worker threads — the concurrent-connection ceiling.
    pub workers: usize,
    /// Accepted-but-unclaimed connection queue; past it the acceptor
    /// answers `503` at accept time.
    pub queue_depth: usize,
    /// Wire-level request limits.
    pub limits: WireLimits,
    /// Idle keep-alive connections are closed after this long.
    pub keep_alive_timeout: Duration,
    /// During drain, how long a worker waits for the rest of a
    /// mid-transmission request before giving up on the connection.
    pub drain_timeout: Duration,
    /// The telemetry sink: per-request traces, stage histograms, and the
    /// request log. Enabled by default (ring + histograms; the request
    /// log defaults to [`xmem_service::LogLevel::Off`], so embedded and
    /// test servers stay silent).
    pub telemetry: Telemetry,
}

impl Default for ServerConfig {
    /// 64 connection workers, a 128-deep accept queue, default wire
    /// limits, 30 s keep-alive idle budget, 5 s drain grace, telemetry
    /// on (silent request log).
    fn default() -> Self {
        ServerConfig {
            workers: 64,
            queue_depth: 128,
            limits: WireLimits::default(),
            keep_alive_timeout: Duration::from_secs(30),
            drain_timeout: Duration::from_secs(5),
            telemetry: Telemetry::new(TelemetryConfig::default()),
        }
    }
}

impl ServerConfig {
    /// Overrides the connection-worker count (clamped to at least 1).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Overrides the accept-queue depth (clamped to at least 1).
    #[must_use]
    pub fn with_queue_depth(mut self, queue_depth: usize) -> Self {
        self.queue_depth = queue_depth.max(1);
        self
    }

    /// Overrides the wire limits.
    #[must_use]
    pub fn with_limits(mut self, limits: WireLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Overrides the keep-alive idle budget.
    #[must_use]
    pub fn with_keep_alive_timeout(mut self, timeout: Duration) -> Self {
        self.keep_alive_timeout = timeout;
        self
    }

    /// Overrides the drain grace for mid-transmission requests.
    #[must_use]
    pub fn with_drain_timeout(mut self, timeout: Duration) -> Self {
        self.drain_timeout = timeout;
        self
    }

    /// Overrides the telemetry sink (e.g. a logging one from the CLI, or
    /// [`Telemetry::disabled`] to turn tracing off entirely).
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }
}

/// State shared by the acceptor, the workers, and the handle.
#[derive(Debug)]
struct Shared {
    service: Arc<AsyncEstimationService>,
    config: ServerConfig,
    metrics: ServerMetrics,
    /// The telemetry sink (mirrors `config.telemetry`; kept separate for
    /// direct access on the hot path).
    telemetry: Telemetry,
    addr: SocketAddr,
    /// When the server bound its listener — the uptime epoch `/healthz`
    /// reports.
    started: Instant,
    draining: AtomicBool,
    /// Signals [`ServerHandle::wait`]ers when a drain is triggered.
    drain_signal: (Mutex<bool>, Condvar),
    /// The cluster tier, when installed ([`ServerHandle::install_cluster`]).
    cluster: RwLock<Option<Arc<ClusterState>>>,
}

impl Shared {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// The installed cluster view, if any.
    fn cluster(&self) -> Option<Arc<ClusterState>> {
        self.cluster
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Flips the drain flag (idempotently) and wakes the acceptor with a
    /// loopback connection so a blocked `accept` observes it.
    fn trigger_drain(&self) {
        if self.draining.swap(true, Ordering::SeqCst) {
            return;
        }
        self.metrics.set_draining();
        let (lock, condvar) = &self.drain_signal;
        // Recover from poisoning: a worker that panicked while holding
        // the signal must not wedge shutdown (the flag write is sound
        // regardless of what the panicking holder left behind).
        *lock
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = true;
        condvar.notify_all();
        // Wake the acceptor out of `accept`. Nothing to do on failure —
        // the listener is gone, which is what we wanted anyway.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
    }
}

/// Outcome of a completed drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Whether every worker exited within the drain deadline. `false`
    /// means stragglers were abandoned (still completing work, e.g. a
    /// very long estimate) when the deadline expired.
    pub clean: bool,
    /// Requests the server answered over its lifetime.
    pub requests_served: u64,
}

/// A running server: the acceptor + worker threads behind one bound
/// address. Dropping the handle triggers a drain but does not wait for
/// it; call [`shutdown`](Self::shutdown) for the bounded, observable
/// version.
#[derive(Debug)]
pub struct ServerHandle {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    /// The down-peer prober, running while a cluster is installed.
    prober: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving `service`.
    ///
    /// # Errors
    /// Propagates bind failures.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Arc<AsyncEstimationService>,
        config: ServerConfig,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            service,
            telemetry: config.telemetry.clone(),
            config: config.clone(),
            metrics: ServerMetrics::new(),
            addr,
            started: Instant::now(),
            draining: AtomicBool::new(false),
            drain_signal: (Mutex::new(false), Condvar::new()),
            cluster: RwLock::new(None),
        });
        let (sender, receiver) = std::sync::mpsc::sync_channel::<TcpStream>(config.queue_depth);
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("xmem-http-{i}"))
                    .spawn(move || worker_loop(&shared, &receiver))
                    .expect("spawn connection worker")
            })
            .collect();
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("xmem-http-accept".to_string())
                .spawn(move || accept_loop(&shared, &listener, &sender))
                .expect("spawn acceptor")
        };
        Ok(ServerHandle {
            shared,
            acceptor: Some(acceptor),
            workers,
            prober: None,
        })
    }

    /// Installs the cluster tier on a running server: consistent-hash
    /// routing with owner forwarding on the `/v1` estimation routes,
    /// shared-secret ingress auth, and a background prober that flips
    /// down peers back up when their `/healthz` answers again.
    ///
    /// Installed *after* [`bind`](Self::bind) because ring identities
    /// are listen addresses — an in-process ring on ephemeral ports only
    /// knows them once every member is bound.
    ///
    /// # Errors
    /// A human-readable message for degenerate configs (empty token,
    /// fewer than two ring members).
    pub fn install_cluster(&mut self, config: &ClusterConfig) -> Result<(), String> {
        let state = Arc::new(ClusterState::new(config)?);
        *self
            .shared
            .cluster
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(Arc::clone(&state));
        let shared = Arc::clone(&self.shared);
        self.prober = Some(
            std::thread::Builder::new()
                .name("xmem-cluster-probe".to_string())
                .spawn(move || {
                    while !shared.draining() {
                        state.probe_down_peers();
                        std::thread::sleep(PROBE_INTERVAL);
                    }
                })
                .expect("spawn cluster prober"),
        );
        Ok(())
    }

    /// The installed cluster view, if any.
    #[must_use]
    pub fn cluster(&self) -> Option<Arc<ClusterState>> {
        self.shared.cluster()
    }

    /// The bound address (with the real port when `:0` was requested).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// This server's wire metrics.
    #[must_use]
    pub fn metrics(&self) -> &ServerMetrics {
        &self.shared.metrics
    }

    /// This server's telemetry sink (trace ring + stage histograms).
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        &self.shared.telemetry
    }

    /// The served estimation service.
    #[must_use]
    pub fn service(&self) -> &Arc<AsyncEstimationService> {
        &self.shared.service
    }

    /// Whether a drain has been triggered (locally or over the wire).
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.shared.draining()
    }

    /// Initiates a drain without waiting for it — the programmatic
    /// SIGTERM-equivalent. Idempotent.
    pub fn trigger_drain(&self) {
        self.shared.trigger_drain();
    }

    /// Blocks until a drain is triggered — by
    /// [`trigger_drain`](Self::trigger_drain)
    /// (another thread holding a reference) or by `POST /v1/shutdown`
    /// over the wire — then completes the drain and joins the server
    /// threads. This is what `xmem-cli listen` parks on.
    pub fn wait(mut self) -> DrainReport {
        {
            let (lock, condvar) = &self.shared.drain_signal;
            // Poison recovery mirrors `trigger_drain`: drain must always
            // complete even after a panic under this lock.
            let mut triggered = lock
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            while !*triggered {
                triggered = condvar
                    .wait(triggered)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }
        self.join_threads()
    }

    /// Graceful shutdown: stop accepting, let every in-flight request
    /// complete and be answered, close all connections, join the server
    /// threads. Waiting for stragglers is bounded by the drain timeout
    /// plus the keep-alive poll interval; [`DrainReport::clean`] reports
    /// whether everyone made it.
    pub fn shutdown(mut self) -> DrainReport {
        self.shared.trigger_drain();
        self.join_threads()
    }

    fn join_threads(&mut self) -> DrainReport {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        if let Some(prober) = self.prober.take() {
            // Exits on its next drain-flag check (bounded by one probe
            // sweep of short-timeout connects).
            let _ = prober.join();
        }
        // Workers exit on their own: every blocking operation they
        // perform either has a timeout or is an in-flight estimate that
        // completes. Bound the wait for stragglers rather than joining
        // unconditionally.
        let deadline = Instant::now() + self.shared.config.drain_timeout + POLL_INTERVAL * 4;
        let mut clean = true;
        while let Some(worker) = self.workers.pop() {
            while !worker.is_finished() && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(5));
            }
            if worker.is_finished() {
                let _ = worker.join();
            } else {
                // Still answering an in-flight request past the deadline:
                // abandon the join (the thread finishes on its own).
                clean = false;
            }
        }
        DrainReport {
            clean,
            requests_served: self.shared.metrics.requests_total(),
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shared.trigger_drain();
    }
}

fn accept_loop(shared: &Shared, listener: &TcpListener, sender: &SyncSender<TcpStream>) {
    for stream in listener.incoming() {
        if shared.draining() {
            break;
        }
        let Ok(stream) = stream else { continue };
        shared.metrics.connection_opened();
        match sender.try_send(stream) {
            Ok(()) => {}
            Err(TrySendError::Full(stream)) | Err(TrySendError::Disconnected(stream)) => {
                // Hard edge: answer 503 inline and close. The inline
                // rendering is the *same* `busy_response` the worker
                // path sends, and it counts toward the byte totals like
                // any other write — a scraper must not be able to tell
                // the two 503 shapes apart.
                shared.metrics.connection_rejected();
                shared.metrics.record_status(503);
                let response = api::busy_response().to_bytes(false);
                shared.metrics.add_bytes_written(response.len() as u64);
                let mut stream = stream;
                let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
                let _ = stream.write_all(&response);
                shared.metrics.connection_closed();
            }
        }
    }
    // Dropping the sender lets idle workers drain the queue and exit.
}

fn worker_loop(shared: &Shared, receiver: &Arc<Mutex<Receiver<TcpStream>>>) {
    loop {
        // A sibling worker panicking mid-`recv` poisons the queue lock;
        // the channel itself is still sound, so keep serving.
        let next = receiver
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .recv();
        match next {
            Ok(stream) => {
                handle_connection(shared, stream);
                shared.metrics.connection_closed();
            }
            Err(_) => break, // acceptor gone and queue drained
        }
    }
}

/// Runs one connection's keep-alive loop to completion.
fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let mut parser = RequestParser::new(shared.config.limits.clone());
    let mut buf = [0u8; 16 * 1024];
    let mut last_activity = Instant::now();
    // When we first observed the drain while mid-request: bounds how long
    // we wait for the rest of that request.
    let mut drain_observed: Option<Instant> = None;

    loop {
        // Serve every complete request already buffered (pipelining).
        loop {
            match parser.poll() {
                Ok(Some(request)) => {
                    last_activity = Instant::now();
                    let keep_alive = serve_request(shared, &mut stream, &request);
                    if !keep_alive {
                        return;
                    }
                }
                Ok(None) => break,
                Err(error) => {
                    shared.metrics.wire_error();
                    let response = wire::error_response(&error);
                    shared.metrics.record_status(response.status);
                    write_response(shared, &mut stream, &response, false);
                    return;
                }
            }
        }
        // The buffered head announced `Expect: 100-continue` and its body
        // is still in flight: answer the interim response before blocking
        // in `read`, or an expectation-honouring client never sends the
        // body and the exchange deadlocks until the idle timeout.
        if parser.take_continue() {
            let interim = b"HTTP/1.1 100 Continue\r\n\r\n";
            shared.metrics.add_bytes_written(interim.len() as u64);
            if stream.write_all(interim).is_err() || stream.flush().is_err() {
                return;
            }
        }
        if shared.draining() {
            let observed = *drain_observed.get_or_insert_with(Instant::now);
            if parser.mid_request() {
                if observed.elapsed() > shared.config.drain_timeout {
                    // The rest of the request never arrived.
                    return;
                }
            } else if observed.elapsed() > POLL_INTERVAL {
                // Quiet connection during a drain: give a request the
                // client sent before it learned of the drain one poll
                // interval to surface from the socket buffer, then close.
                return;
            }
        } else if last_activity.elapsed() > shared.config.keep_alive_timeout {
            return;
        }
        match stream.read(&mut buf) {
            Ok(0) => return, // peer closed
            Ok(n) => {
                shared.metrics.add_bytes_read(n as u64);
                parser.feed(&buf[..n]);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return,
        }
    }
}

/// Routes and answers one request; returns whether to keep the
/// connection.
fn serve_request(shared: &Shared, stream: &mut TcpStream, request: &wire::Request) -> bool {
    let started = Instant::now();
    // Adopt the trace id a forwarding hop (or tracing-aware client) sent;
    // otherwise this request starts a fresh trace.
    let ctx = shared.telemetry.begin_trace(request.header(TRACE_HEADER));
    let (route, response) = respond(shared, request, &ctx, started);
    shared
        .metrics
        .record_request(route, response.status, started.elapsed());
    let forwarded = request.header(cluster::FORWARDED_HEADER).is_some();
    shared.telemetry.finish(
        &ctx,
        &request.method,
        request.path(),
        response.status,
        forwarded,
    );
    // A drain observed after this request was parsed still answers it —
    // that is the "drain in-flight" contract — but closes afterwards.
    let keep_alive = request.wants_keep_alive() && !shared.draining();
    write_response(shared, stream, &response, keep_alive) && keep_alive
}

fn write_response(
    shared: &Shared,
    stream: &mut TcpStream,
    response: &Response,
    keep_alive: bool,
) -> bool {
    let bytes = response.to_bytes(keep_alive);
    shared.metrics.add_bytes_written(bytes.len() as u64);
    stream.write_all(&bytes).is_ok() && stream.flush().is_ok()
}

/// The metrics route label for a path (any method).
fn route_of(path: &str) -> Route {
    match path {
        "/healthz" => Route::Healthz,
        "/metrics" => Route::Metrics,
        "/v1/estimate" => Route::Estimate,
        "/v1/matrix" => Route::Matrix,
        "/v1/sweep" => Route::Sweep,
        "/v1/plan" => Route::Plan,
        "/v1/best-device" => Route::BestDevice,
        "/v1/shutdown" => Route::Shutdown,
        "/v1/debug/traces" => Route::DebugTraces,
        _ => Route::Unmatched,
    }
}

/// Cluster placement for one unforwarded `/v1` POST. `Some` when the
/// request was answered remotely (or straight from a local sim cell);
/// `None` falls through to the local handlers — the request is owned
/// here, unplaceable (malformed bodies keep their single-node error
/// shapes), or its owner is unreachable (local fallback trades the
/// exactly-once economy for availability; estimates are deterministic,
/// so the answer is still bit-identical).
fn cluster_route(
    shared: &Shared,
    cluster: &ClusterState,
    request: &wire::Request,
    ctx: &TraceContext,
    received: Instant,
) -> Option<Response> {
    let path = request.path();
    let body: serde::Value = std::str::from_utf8(&request.body)
        .ok()
        .and_then(|text| serde_json::from_str(text).ok())?;
    let (spec, hash) = cluster::route_placement(path, &body)?;
    let owner = cluster.ring().owner_index(hash)?;
    if owner == cluster.self_index() {
        return None;
    }
    let device = if path == "/v1/estimate" {
        match body.as_object().and_then(|o| serde::obj_get(o, "device")) {
            Some(serde::Value::Str(name)) => Some(name.clone()),
            Some(serde::Value::Null) | None => None,
            // Malformed device field: the local handler owns the 400.
            Some(_) => return None,
        }
    } else {
        None
    };
    // A cell an earlier forward already filled answers locally — the
    // rendering is byte-identical to the owner's (deterministic values,
    // shared rendering functions).
    if path == "/v1/estimate" {
        if let Some(estimate) = shared
            .service
            .service()
            .cached_cell_estimate(&spec, device.as_deref())
        {
            ctx.event("cache.sim", "cell-hit");
            return Some(Response::json(200, api::estimate_body(&estimate)));
        }
    }
    if !cluster.peer_up(owner) {
        cluster.note_local_fallback();
        ctx.event("cluster.forward", "fallback");
        return None;
    }
    let response = match cluster.forward(owner, request, ctx, received.elapsed()) {
        Some(response) => response,
        None => {
            cluster.note_local_fallback();
            return None;
        }
    };
    // Local fill: the owner's estimate lands in this node's sim cell
    // (journaled like any local insert), so the next query for this key
    // is a local hit instead of another forward.
    if path == "/v1/estimate" && response.status == 200 {
        let parsed: Option<serde::Value> = serde_json::from_str(&response.text()).ok();
        if let Some(estimate) = parsed
            .as_ref()
            .and_then(serde::Value::as_object)
            .and_then(|o| serde::obj_get(o, "estimate"))
            .and_then(api::estimate_from_value)
        {
            if shared
                .service
                .service()
                .fill_sim_cell(&spec, device.as_deref(), estimate)
            {
                cluster.note_cell_fill();
            }
        }
    }
    Some(cluster::relay_response(&response))
}

/// Renders the `/healthz` JSON body: liveness status, crate version,
/// uptime, and the node's cluster role (`null` when single-node).
fn healthz_body(shared: &Shared, cluster_view: Option<&Arc<ClusterState>>) -> String {
    let status = if shared.draining() { "draining" } else { "ok" };
    let uptime = shared.started.elapsed().as_secs();
    let cluster_json = match cluster_view {
        Some(cluster) => format!(
            "{{\"peers\":{},\"self\":{}}}",
            cluster.ring().len() - 1,
            wire::json_string(cluster.ring().node(cluster.self_index())),
        ),
        None => "null".to_string(),
    };
    format!(
        "{{\"status\":\"{status}\",\"version\":\"{}\",\"uptime_seconds\":{uptime},\"cluster\":{cluster_json}}}",
        env!("CARGO_PKG_VERSION"),
    )
}

/// Answers `GET /v1/debug/traces`: the last-N completed traces, newest
/// first, optionally filtered to requests slower than `?slow_ms=`.
fn debug_traces_response(shared: &Shared, request: &wire::Request) -> Response {
    /// Traces returned when `?n=` is absent.
    const DEFAULT_LAST_N: usize = 64;
    let query = request
        .target
        .split_once('?')
        .map_or("", |(_, query)| query);
    let mut last_n = DEFAULT_LAST_N;
    let mut slow_ms = None;
    for pair in query.split('&').filter(|pair| !pair.is_empty()) {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        match key {
            "n" => match value.parse() {
                Ok(n) => last_n = n,
                Err(_) => return api::bad_request("`n` must be a non-negative integer"),
            },
            "slow_ms" => match value.parse() {
                Ok(ms) => slow_ms = Some(ms),
                Err(_) => return api::bad_request("`slow_ms` must be a non-negative integer"),
            },
            other => return api::bad_request(&format!("unknown query parameter `{other}`")),
        }
    }
    Response::json(200, shared.telemetry.traces_json(last_n, slow_ms))
}

/// The route table.
fn respond(
    shared: &Shared,
    request: &wire::Request,
    ctx: &TraceContext,
    received: Instant,
) -> (Route, Response) {
    let service = &shared.service;
    let cluster_view = shared.cluster();
    if let Some(cluster) = &cluster_view {
        // Peer traffic must not be anonymous: with a cluster installed,
        // every `/v1` route demands the shared secret. `/healthz` and
        // `/metrics` stay open (probes and scrapers are read-only).
        if request.path().starts_with("/v1/") && !cluster.authorized(request) {
            return (
                route_of(request.path()),
                Response::json(
                    401,
                    api::error_body("unauthorized", "missing or invalid `x-xmem-auth` token"),
                ),
            );
        }
        if request.header(cluster::FORWARDED_HEADER).is_some() {
            // Hop guard: a forwarded request is computed locally, never
            // re-forwarded — loops are impossible by construction.
            cluster.note_forwarded_request();
        } else if request.method == "POST" {
            if let Some(response) = cluster_route(shared, cluster, request, ctx, received) {
                return (route_of(request.path()), response);
            }
        }
    }
    match (request.method.as_str(), request.path()) {
        ("GET", "/healthz") => (
            Route::Healthz,
            Response::json(200, healthz_body(shared, cluster_view.as_ref())),
        ),
        ("GET", "/metrics") => {
            let mut exposition = shared.metrics.render_prometheus(service.service());
            if let Some(cluster) = &cluster_view {
                exposition.push_str(&cluster.render_prometheus());
            }
            shared.telemetry.render_prometheus(&mut exposition);
            (Route::Metrics, Response::text(200, exposition))
        }
        ("GET", "/v1/debug/traces") => (Route::DebugTraces, debug_traces_response(shared, request)),
        ("POST", "/v1/estimate") => (Route::Estimate, api::handle_estimate(service, request, ctx)),
        ("POST", "/v1/matrix") => (Route::Matrix, api::handle_matrix(service, request, ctx)),
        ("POST", "/v1/sweep") => (Route::Sweep, api::handle_sweep(service, request, ctx)),
        ("POST", "/v1/plan") => (Route::Plan, api::handle_plan(service, request, ctx)),
        ("POST", "/v1/best-device") => (
            Route::BestDevice,
            api::handle_best_device(service, request, ctx),
        ),
        ("POST", "/v1/shutdown") => {
            shared.trigger_drain();
            (
                Route::Shutdown,
                Response::json(200, "{\"status\":\"draining\"}".to_string()),
            )
        }
        (
            _,
            "/healthz" | "/metrics" | "/v1/estimate" | "/v1/matrix" | "/v1/sweep" | "/v1/plan"
            | "/v1/best-device" | "/v1/shutdown" | "/v1/debug/traces",
        ) => (
            Route::Unmatched,
            Response::json(405, api::error_body("method_not_allowed", "wrong method")),
        ),
        (_, path) => (
            Route::Unmatched,
            Response::json(
                404,
                api::error_body("not_found", &format!("no route for `{path}`")),
            ),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmem_service::AsyncServiceConfig;

    fn bind_loopback() -> ServerHandle {
        let service = Arc::new(AsyncEstimationService::new(AsyncServiceConfig::for_device(
            xmem_runtime::GpuDevice::rtx3060(),
        )));
        ServerHandle::bind("127.0.0.1:0", service, ServerConfig::default()).expect("bind loopback")
    }

    /// A panic while holding the drain-signal mutex must not wedge
    /// shutdown: `trigger_drain` and `wait` both recover from the
    /// poisoned lock and the drain completes.
    #[test]
    fn drain_completes_even_when_the_signal_mutex_is_poisoned() {
        let server = bind_loopback();
        let shared = Arc::clone(&server.shared);
        let poisoner = std::thread::spawn(move || {
            let _guard = shared.drain_signal.0.lock().expect("first holder");
            panic!("poison the drain signal");
        });
        assert!(poisoner.join().is_err(), "the poisoner must panic");
        assert!(
            server.shared.drain_signal.0.is_poisoned(),
            "the mutex must actually be poisoned for this test to mean anything"
        );
        server.trigger_drain();
        let report = server.wait();
        assert!(report.clean, "drain must complete despite the poison");
    }
}
