//! A minimal blocking HTTP/1.1 client over one keep-alive connection —
//! enough protocol for the load bench, the examples, and the integration
//! tests to drive the server without external dependencies.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One parsed response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// The first value of header `name` (ASCII case-insensitive).
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body as text. This server only emits UTF-8, but a misbehaving
    /// peer must not be able to crash the client: invalid sequences are
    /// decoded lossily (U+FFFD replacement characters) instead of
    /// panicking. A well-formed body borrows without allocating.
    #[must_use]
    pub fn text(&self) -> std::borrow::Cow<'_, str> {
        String::from_utf8_lossy(&self.body)
    }
}

fn protocol_error(message: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, message.into())
}

/// Whether a transport error is the shape a server-closed idle
/// connection produces: EOF before any response byte, or the TCP-level
/// reset/abort spellings the close races into on the write side.
fn is_stale_connection(error: &std::io::Error) -> bool {
    matches!(
        error.kind(),
        std::io::ErrorKind::UnexpectedEof
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::BrokenPipe
    )
}

/// A blocking client holding one keep-alive connection.
///
/// A reused connection can race the server's idle keep-alive timeout:
/// the server closes just as the next request departs, and the write (or
/// the first read) surfaces a transport error even though the request
/// never reached a handler. [`request`](Self::request) detects that
/// exact shape — the connection already served a response, and **zero**
/// bytes of a new response have arrived — and transparently reconnects
/// once before surfacing the error. A failure after response bytes
/// arrived is never retried (the server may have acted on the request).
#[derive(Debug)]
pub struct HttpClient {
    stream: TcpStream,
    addr: SocketAddr,
    /// Bytes read past the previous response (response framing never
    /// splits exactly on read boundaries).
    leftover: Vec<u8>,
    /// Whether this connection has completed an exchange — only a
    /// *reused* connection is eligible for the reconnect-once retry; a
    /// failure on a fresh connection is a real error.
    used: bool,
}

impl HttpClient {
    /// Connects to `addr`.
    ///
    /// # Errors
    /// Propagates connect failures.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<HttpClient> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| protocol_error("address resolved to nothing"))?;
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(HttpClient {
            stream,
            addr,
            leftover: Vec::new(),
            used: false,
        })
    }

    /// The connected peer address.
    #[must_use]
    pub fn peer_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Bounds every read on the connection (e.g. for tests that expect
    /// the server to close instead of answering).
    ///
    /// # Errors
    /// Propagates socket-option failures.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Sends raw bytes on the connection — the adversarial tests' door
    /// into sending deliberately broken HTTP.
    ///
    /// # Errors
    /// Propagates write failures.
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// Half-closes the connection (no more writes) — how the adversarial
    /// tests truncate a request body mid-transmission.
    ///
    /// # Errors
    /// Propagates socket failures.
    pub fn shutdown_write(&self) -> std::io::Result<()> {
        self.stream.shutdown(std::net::Shutdown::Write)
    }

    /// Reads one response off the connection without having sent a
    /// well-formed request (paired with [`send_raw`](Self::send_raw)).
    ///
    /// # Errors
    /// Propagates read failures; `InvalidData` for non-HTTP bytes.
    pub fn read_response(&mut self) -> std::io::Result<ClientResponse> {
        // Head: read until the terminator.
        let head_end = loop {
            if let Some(i) = self.leftover.windows(4).position(|w| w == b"\r\n\r\n") {
                break i;
            }
            let mut buf = [0u8; 8 * 1024];
            let n = self.stream.read(&mut buf)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed before a response head",
                ));
            }
            self.leftover.extend_from_slice(&buf[..n]);
        };
        let head: Vec<u8> = self.leftover.drain(..head_end + 4).collect();
        let head = std::str::from_utf8(&head[..head_end])
            .map_err(|_| protocol_error("response head is not UTF-8"))?;
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or("");
        let status: u16 = status_line
            .strip_prefix("HTTP/1.1 ")
            .or_else(|| status_line.strip_prefix("HTTP/1.0 "))
            .and_then(|rest| rest.split(' ').next())
            .and_then(|code| code.parse().ok())
            .ok_or_else(|| protocol_error(format!("bad status line `{status_line}`")))?;
        let mut headers = Vec::new();
        for line in lines {
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| protocol_error(format!("bad header `{line}`")))?;
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }
        let length: usize = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .and_then(|(_, v)| v.parse().ok())
            .ok_or_else(|| protocol_error("response without content-length"))?;
        while self.leftover.len() < length {
            let mut buf = [0u8; 8 * 1024];
            let n = self.stream.read(&mut buf)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-body",
                ));
            }
            self.leftover.extend_from_slice(&buf[..n]);
        }
        let body: Vec<u8> = self.leftover.drain(..length).collect();
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }

    /// Performs one request/response exchange on the keep-alive
    /// connection.
    ///
    /// A transport error on a *reused* connection before any response
    /// byte arrived is the idle-timeout race (the server closed the idle
    /// connection between requests); the exchange reconnects once and
    /// resends before surfacing anything.
    ///
    /// # Errors
    /// Propagates socket and framing failures that survive the
    /// reconnect-once policy.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> std::io::Result<ClientResponse> {
        match self.exchange(method, path, headers, body) {
            Err(error) if self.used && self.leftover.is_empty() && is_stale_connection(&error) => {
                self.reconnect()?;
                self.exchange(method, path, headers, body)
            }
            outcome => outcome,
        }
    }

    /// One raw request/response exchange, marking the connection used on
    /// success.
    fn exchange(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> std::io::Result<ClientResponse> {
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nhost: {}\r\ncontent-length: {}\r\n",
            self.addr,
            body.len()
        );
        for (name, value) in headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("\r\n");
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body)?;
        self.stream.flush()?;
        let response = self.read_response()?;
        self.used = true;
        Ok(response)
    }

    /// Replaces the dead connection with a fresh one, carrying over the
    /// configured read timeout.
    fn reconnect(&mut self) -> std::io::Result<()> {
        let timeout = self.stream.read_timeout().ok().flatten();
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(timeout)?;
        self.stream = stream;
        self.leftover.clear();
        self.used = false;
        Ok(())
    }

    /// `GET path`.
    ///
    /// # Errors
    /// See [`request`](Self::request).
    pub fn get(&mut self, path: &str) -> std::io::Result<ClientResponse> {
        self.request("GET", path, &[], b"")
    }

    /// `POST path` with a JSON body.
    ///
    /// # Errors
    /// See [`request`](Self::request).
    pub fn post_json(&mut self, path: &str, json: &str) -> std::io::Result<ClientResponse> {
        self.request(
            "POST",
            path,
            &[("content-type", "application/json")],
            json.as_bytes(),
        )
    }

    /// `POST path` with a JSON body and a per-request deadline budget
    /// (the `x-xmem-deadline-ms` header).
    ///
    /// # Errors
    /// See [`request`](Self::request).
    pub fn post_json_with_deadline(
        &mut self,
        path: &str,
        json: &str,
        deadline_ms: u64,
    ) -> std::io::Result<ClientResponse> {
        let deadline = deadline_ms.to_string();
        self.request(
            "POST",
            path,
            &[
                ("content-type", "application/json"),
                (crate::api::DEADLINE_HEADER, deadline.as_str()),
            ],
            json.as_bytes(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::net::TcpListener;

    /// A one-response-per-connection server: answers the first request
    /// on each accepted connection, then closes it — the shape of a
    /// server whose idle keep-alive timeout fires between requests.
    fn close_after_one_server() -> (SocketAddr, std::thread::JoinHandle<usize>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let handle = std::thread::spawn(move || {
            let mut connections = 0usize;
            // Two connections are enough for the reconnect-once test;
            // stop listening afterwards so the thread exits.
            for stream in listener.incoming().take(2) {
                let mut stream = stream.expect("accept");
                connections += 1;
                let mut buf = [0u8; 4096];
                let mut seen = Vec::new();
                // Read until the request head is complete (GETs carry
                // `content-length: 0`, so the head is the request).
                while !seen.windows(4).any(|w| w == b"\r\n\r\n") {
                    let n = stream.read(&mut buf).expect("read request");
                    if n == 0 {
                        break;
                    }
                    seen.extend_from_slice(&buf[..n]);
                }
                let body = format!("{{\"connection\":{connections}}}");
                let response = format!(
                    "HTTP/1.1 200 OK\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
                    body.len()
                );
                stream
                    .write_all(response.as_bytes())
                    .expect("write response");
                // Dropping the stream closes the connection.
            }
            connections
        });
        (addr, handle)
    }

    /// The idle-timeout race: the server closes the keep-alive
    /// connection after one exchange; the next `request` must reconnect
    /// once and succeed instead of surfacing the raw io error.
    #[test]
    fn reused_connection_closed_by_the_server_reconnects_once() {
        let (addr, server) = close_after_one_server();
        let mut client = HttpClient::connect(addr).expect("connect");
        let first = client.get("/one").expect("first request");
        assert_eq!(first.status, 200);
        assert_eq!(first.text(), "{\"connection\":1}");
        let second = client.get("/two").expect("second request must reconnect");
        assert_eq!(second.status, 200);
        assert_eq!(
            second.text(),
            "{\"connection\":2}",
            "the retry must have arrived on a fresh connection"
        );
        assert_eq!(server.join().expect("server thread"), 2);
    }

    /// A dead server on a *fresh* connection is a real error: the
    /// reconnect-once policy only covers reused connections, so the
    /// failure surfaces instead of looping.
    #[test]
    fn fresh_connection_failure_is_not_retried() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let closer = std::thread::spawn(move || {
            // Accept and immediately close without answering.
            let _ = listener.accept();
        });
        let mut client = HttpClient::connect(addr).expect("connect");
        let error = client.get("/").expect_err("no response must surface");
        assert!(is_stale_connection(&error), "unexpected kind: {error:?}");
        closer.join().expect("closer thread");
    }

    /// A misbehaving peer sending non-UTF-8 bytes must not crash the
    /// client: `text` decodes lossily instead of panicking.
    #[test]
    fn text_decodes_non_utf8_bodies_lossily() {
        let response = ClientResponse {
            status: 200,
            headers: Vec::new(),
            body: vec![b'o', b'k', 0xff, 0xfe, b'!'],
        };
        assert_eq!(response.text(), "ok\u{fffd}\u{fffd}!");
    }

    /// Well-formed bodies borrow without allocating.
    #[test]
    fn text_borrows_valid_utf8() {
        let response = ClientResponse {
            status: 200,
            headers: Vec::new(),
            body: b"plain".to_vec(),
        };
        assert!(matches!(
            response.text(),
            std::borrow::Cow::Borrowed("plain")
        ));
    }
}
