//! A minimal blocking HTTP/1.1 client over one keep-alive connection —
//! enough protocol for the load bench, the examples, and the integration
//! tests to drive the server without external dependencies.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One parsed response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// The first value of header `name` (ASCII case-insensitive).
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body as text. This server only emits UTF-8, but a misbehaving
    /// peer must not be able to crash the client: invalid sequences are
    /// decoded lossily (U+FFFD replacement characters) instead of
    /// panicking. A well-formed body borrows without allocating.
    #[must_use]
    pub fn text(&self) -> std::borrow::Cow<'_, str> {
        String::from_utf8_lossy(&self.body)
    }
}

fn protocol_error(message: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, message.into())
}

/// A blocking client holding one keep-alive connection.
#[derive(Debug)]
pub struct HttpClient {
    stream: TcpStream,
    addr: SocketAddr,
    /// Bytes read past the previous response (response framing never
    /// splits exactly on read boundaries).
    leftover: Vec<u8>,
}

impl HttpClient {
    /// Connects to `addr`.
    ///
    /// # Errors
    /// Propagates connect failures.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<HttpClient> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| protocol_error("address resolved to nothing"))?;
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(HttpClient {
            stream,
            addr,
            leftover: Vec::new(),
        })
    }

    /// The connected peer address.
    #[must_use]
    pub fn peer_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Bounds every read on the connection (e.g. for tests that expect
    /// the server to close instead of answering).
    ///
    /// # Errors
    /// Propagates socket-option failures.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Sends raw bytes on the connection — the adversarial tests' door
    /// into sending deliberately broken HTTP.
    ///
    /// # Errors
    /// Propagates write failures.
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// Half-closes the connection (no more writes) — how the adversarial
    /// tests truncate a request body mid-transmission.
    ///
    /// # Errors
    /// Propagates socket failures.
    pub fn shutdown_write(&self) -> std::io::Result<()> {
        self.stream.shutdown(std::net::Shutdown::Write)
    }

    /// Reads one response off the connection without having sent a
    /// well-formed request (paired with [`send_raw`](Self::send_raw)).
    ///
    /// # Errors
    /// Propagates read failures; `InvalidData` for non-HTTP bytes.
    pub fn read_response(&mut self) -> std::io::Result<ClientResponse> {
        // Head: read until the terminator.
        let head_end = loop {
            if let Some(i) = self.leftover.windows(4).position(|w| w == b"\r\n\r\n") {
                break i;
            }
            let mut buf = [0u8; 8 * 1024];
            let n = self.stream.read(&mut buf)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed before a response head",
                ));
            }
            self.leftover.extend_from_slice(&buf[..n]);
        };
        let head: Vec<u8> = self.leftover.drain(..head_end + 4).collect();
        let head = std::str::from_utf8(&head[..head_end])
            .map_err(|_| protocol_error("response head is not UTF-8"))?;
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or("");
        let status: u16 = status_line
            .strip_prefix("HTTP/1.1 ")
            .or_else(|| status_line.strip_prefix("HTTP/1.0 "))
            .and_then(|rest| rest.split(' ').next())
            .and_then(|code| code.parse().ok())
            .ok_or_else(|| protocol_error(format!("bad status line `{status_line}`")))?;
        let mut headers = Vec::new();
        for line in lines {
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| protocol_error(format!("bad header `{line}`")))?;
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }
        let length: usize = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .and_then(|(_, v)| v.parse().ok())
            .ok_or_else(|| protocol_error("response without content-length"))?;
        while self.leftover.len() < length {
            let mut buf = [0u8; 8 * 1024];
            let n = self.stream.read(&mut buf)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-body",
                ));
            }
            self.leftover.extend_from_slice(&buf[..n]);
        }
        let body: Vec<u8> = self.leftover.drain(..length).collect();
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }

    /// Performs one request/response exchange on the keep-alive
    /// connection.
    ///
    /// # Errors
    /// Propagates socket and framing failures (e.g. the server closed the
    /// connection — reconnect and retry if the request is idempotent).
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> std::io::Result<ClientResponse> {
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nhost: {}\r\ncontent-length: {}\r\n",
            self.addr,
            body.len()
        );
        for (name, value) in headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("\r\n");
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body)?;
        self.stream.flush()?;
        self.read_response()
    }

    /// `GET path`.
    ///
    /// # Errors
    /// See [`request`](Self::request).
    pub fn get(&mut self, path: &str) -> std::io::Result<ClientResponse> {
        self.request("GET", path, &[], b"")
    }

    /// `POST path` with a JSON body.
    ///
    /// # Errors
    /// See [`request`](Self::request).
    pub fn post_json(&mut self, path: &str, json: &str) -> std::io::Result<ClientResponse> {
        self.request(
            "POST",
            path,
            &[("content-type", "application/json")],
            json.as_bytes(),
        )
    }

    /// `POST path` with a JSON body and a per-request deadline budget
    /// (the `x-xmem-deadline-ms` header).
    ///
    /// # Errors
    /// See [`request`](Self::request).
    pub fn post_json_with_deadline(
        &mut self,
        path: &str,
        json: &str,
        deadline_ms: u64,
    ) -> std::io::Result<ClientResponse> {
        let deadline = deadline_ms.to_string();
        self.request(
            "POST",
            path,
            &[
                ("content-type", "application/json"),
                (crate::api::DEADLINE_HEADER, deadline.as_str()),
            ],
            json.as_bytes(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A misbehaving peer sending non-UTF-8 bytes must not crash the
    /// client: `text` decodes lossily instead of panicking.
    #[test]
    fn text_decodes_non_utf8_bodies_lossily() {
        let response = ClientResponse {
            status: 200,
            headers: Vec::new(),
            body: vec![b'o', b'k', 0xff, 0xfe, b'!'],
        };
        assert_eq!(response.text(), "ok\u{fffd}\u{fffd}!");
    }

    /// Well-formed bodies borrow without allocating.
    #[test]
    fn text_borrows_valid_utf8() {
        let response = ClientResponse {
            status: 200,
            headers: Vec::new(),
            body: b"plain".to_vec(),
        };
        assert!(matches!(
            response.text(),
            std::borrow::Cow::Borrowed("plain")
        ));
    }
}
