//! Golden-trace regression test.
//!
//! The fixture is a real `profile_on_cpu` trace (MobileNetV3-Small, Adam,
//! batch 2, 2 iterations) serialized through the `xmem-trace` JSON format
//! and committed. The Analyzer's per-category block counts and byte totals
//! over that trace are contract: refactors of the trace format, the
//! lifecycle pairing, the window reconstruction or the classifier must not
//! silently shift them. Regenerate the fixture (and these constants) only
//! for a *deliberate* semantic change:
//!
//! ```text
//! cargo run --bin xmem-cli -- profile --model MobeNetV3Small --optimizer Adam \
//!     --batch 2 --iterations 2 --out crates/xmem-core/tests/fixtures/...
//! ```

use xmem_core::{Analyzer, BlockCategory};
use xmem_trace::Trace;

const FIXTURE: &str = include_str!("fixtures/mobilenet_v3_small_adam_b2.trace.json");

/// `(category, block count, total bytes)` as produced at fixture capture.
const GOLDEN_CATEGORIES: &[(BlockCategory, usize, u64)] = &[
    (BlockCategory::Parameter, 210, 10_219_872),
    (BlockCategory::BatchData, 4, 49_184),
    (BlockCategory::Activation, 302, 1_291_144),
    (BlockCategory::Gradient, 284, 20_342_848),
    (BlockCategory::BackwardTemp, 228, 1_174_144),
    (BlockCategory::OptimizerState, 284, 20_342_848),
    (BlockCategory::OptimizerScratch, 284, 20_342_848),
    (BlockCategory::Workspace, 562, 20_410_768),
    (BlockCategory::Script, 26, 21_495_848),
];

const GOLDEN_EVENT_COUNT: usize = 4587;

#[test]
fn fixture_parses_to_the_captured_event_count() {
    let trace = Trace::from_json_str(FIXTURE).expect("fixture parses");
    assert_eq!(trace.events().len(), GOLDEN_EVENT_COUNT);
}

#[test]
fn analyzer_category_counts_and_bytes_are_stable() {
    let trace = Trace::from_json_str(FIXTURE).expect("fixture parses");
    let analyzed = Analyzer::new().analyze(&trace).expect("fixture analyzes");
    for &(category, count, bytes) in GOLDEN_CATEGORIES {
        assert_eq!(
            analyzed.count(category),
            count,
            "block count drifted for {category:?}"
        );
        assert_eq!(
            analyzed.bytes(category),
            bytes,
            "byte total drifted for {category:?}"
        );
    }
    assert_eq!(
        analyzed.lifecycle_stats.unmatched_frees, 0,
        "the captured trace pairs every free"
    );
}

#[test]
fn fixture_roundtrips_through_the_json_writer() {
    let trace = Trace::from_json_str(FIXTURE).expect("fixture parses");
    let rewritten = trace.to_json_string().expect("fixture serializes");
    let back = Trace::from_json_str(&rewritten).expect("rewritten fixture parses");
    assert_eq!(back.events(), trace.events());
}
