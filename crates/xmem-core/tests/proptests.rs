//! Property-based tests of the Analyzer/Orchestrator invariants over
//! randomized traces.

use proptest::prelude::*;
use xmem_core::{reconstruct_lifecycles, Analyzer, Orchestrator};
use xmem_trace::{names, EventCategory, Trace, TraceEvent};

/// Random alloc/free interleavings over a small address space with heavy
/// address reuse — the adversarial input for lifecycle pairing.
fn mem_event_strategy() -> impl Strategy<Value = (u8, u32, bool)> {
    // (address slot, size, is_alloc)
    (0u8..8, 1u32..100_000, any::<bool>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Lifecycle reconstruction never panics, never produces blocks with
    /// `free_ts < alloc_ts`, and pairs at most as many frees as allocs.
    #[test]
    fn lifecycle_pairing_is_sound(events in proptest::collection::vec(mem_event_strategy(), 0..200)) {
        let mut trace = Trace::new("prop");
        let mut live: [Vec<u32>; 8] = Default::default();
        for (i, (slot, size, is_alloc)) in events.iter().enumerate() {
            let ts = i as u64;
            let addr = 0x1000 + u64::from(*slot) * 0x100;
            if *is_alloc {
                trace.push(TraceEvent::mem_alloc(ts, addr, u64::from(*size), -1));
                live[*slot as usize].push(*size);
            } else if let Some(size) = live[*slot as usize].pop() {
                trace.push(TraceEvent::mem_free(ts, addr, u64::from(size), -1));
            }
        }
        let (blocks, stats) = reconstruct_lifecycles(&trace, -1);
        prop_assert_eq!(stats.unmatched_frees, 0, "LIFO discipline never mismatches");
        for b in &blocks {
            if let Some(f) = b.free_ts {
                prop_assert!(f >= b.alloc_ts);
            }
        }
        let allocs = events.iter().filter(|e| e.2).count();
        prop_assert_eq!(blocks.len(), allocs);
    }

    /// Orchestration of any analyzable trace yields a balanced, time-ordered
    /// event sequence whose live-byte trajectory never goes negative.
    #[test]
    fn orchestrated_sequences_are_well_formed(
        events in proptest::collection::vec(mem_event_strategy(), 1..150),
        iter_len in 50u64..500,
    ) {
        let mut trace = Trace::new("prop");
        // A synthetic op window covering everything keeps blocks attributable.
        let horizon = events.len() as u64 + 2;
        trace.push(TraceEvent::span(
            EventCategory::UserAnnotation,
            names::profiler_step(1),
            0,
            horizon.max(iter_len),
        ));
        trace.push(TraceEvent::span(EventCategory::CpuOp, "aten::mix", 0, horizon));
        let mut live: [Vec<u32>; 8] = Default::default();
        for (i, (slot, size, is_alloc)) in events.iter().enumerate() {
            let ts = i as u64 + 1;
            let addr = 0x1000 + u64::from(*slot) * 0x100;
            if *is_alloc {
                trace.push(TraceEvent::mem_alloc(ts, addr, u64::from(*size), -1));
                live[*slot as usize].push(*size);
            } else if let Some(size) = live[*slot as usize].pop() {
                trace.push(TraceEvent::mem_free(ts, addr, u64::from(size), -1));
            }
        }
        trace.sort_by_time();
        let Ok(analyzed) = Analyzer::new().analyze(&trace) else {
            // Traces with zero allocations are rejected; fine.
            return Ok(());
        };
        let sequence = Orchestrator::default().orchestrate(&analyzed);
        let mut live_bytes: i128 = 0;
        let mut last_ts = 0u64;
        let mut open = std::collections::HashSet::new();
        for e in &sequence.events {
            prop_assert!(e.ts_us >= last_ts, "events are time-ordered");
            last_ts = e.ts_us;
            if e.is_alloc {
                prop_assert!(open.insert(e.block));
                live_bytes += i128::from(e.bytes);
            } else {
                prop_assert!(open.remove(&e.block));
                live_bytes -= i128::from(e.bytes);
            }
            prop_assert!(live_bytes >= 0);
        }
        prop_assert!(open.is_empty(), "every block is freed by the horizon");
        prop_assert_eq!(live_bytes, 0);
    }
}
