//! xMem: a-priori estimation of peak GPU memory from CPU-only profiling.
//!
//! This crate implements the paper's contribution (§3): a three-stage
//! pipeline that turns a CPU profiler trace of the first few training
//! iterations into an accurate prediction of the job's peak GPU memory —
//! without touching the target GPU.
//!
//! 1. [`Analyzer`] — parses the raw trace: pairs allocation/free instants
//!    into memory-block lifecycles (handling address reuse), rebuilds
//!    operator and component execution windows, attributes each block to
//!    the operator context that produced it, and classifies blocks
//!    (parameters, batch data, activations, gradients, optimizer state,
//!    workspaces). Script-level temporaries are filtered out.
//! 2. [`Orchestrator`] — re-times lifecycles to match GPU semantics
//!    (§3.3): parameters persist, batch data dies at the iteration
//!    boundary, activations keep their CPU-derived lifecycle, parameter
//!    gradients die exactly at `optimizer.zero_grad()`, optimizer state
//!    persists from its first allocation.
//! 3. [`Simulator`] — replays the orchestrated event sequence through the
//!    two-level allocator simulation of [`xmem_alloc`] against the target
//!    device's capacity, yielding the estimated peak *segment* memory, an
//!    optional usage curve, and an OOM prediction (§3.4).
//!
//! The [`Estimator`] facade runs the full pipeline, either from an
//! existing trace or by profiling a job spec on the CPU backend first.
//!
//! # Example
//!
//! ```
//! use xmem_core::{Estimator, EstimatorConfig};
//! use xmem_runtime::{GpuDevice, TrainJobSpec};
//! use xmem_models::ModelId;
//! use xmem_optim::OptimizerKind;
//!
//! let spec = TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 8)
//!     .with_iterations(2);
//! let estimator = Estimator::new(EstimatorConfig::for_device(GpuDevice::rtx3060()));
//! let estimate = estimator.estimate_job(&spec).unwrap();
//! assert!(estimate.peak_bytes > 0);
//! assert!(!estimate.oom_predicted);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyzer;
mod error;
mod layerwise;
mod lifecycle;
mod matrix;
mod orchestrator;
mod param;
mod pipeline;
mod report;
mod simulator;
mod windows;

pub use analyzer::{AnalyzedBlock, AnalyzedTrace, Analyzer, BlockCategory};
pub use error::EstimateError;
pub use layerwise::{layer_report, render_layer_report, LayerMemory};
pub use lifecycle::{reconstruct_lifecycles, LifecycleStats, MemoryBlock};
pub use matrix::{DeviceMatrix, DevicePlacement, MatrixCell, MatrixRow};
pub use orchestrator::{OrchestratedEvent, OrchestratedSequence, Orchestrator};
pub use param::{EventBuffer, ParamRejection, ParamReplay};
pub use pipeline::{AnalysisStats, Estimate, Estimator, EstimatorConfig, UnboundedReplay};
pub use report::render_report;
pub use simulator::{SimulationResult, Simulator};
pub use windows::{AnnotationIndex, OpWindow, WindowIndex};
