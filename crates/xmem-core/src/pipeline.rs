//! The public estimation facade: Analyzer → Orchestrator → Simulator.

use crate::analyzer::{AnalyzedTrace, Analyzer, BlockCategory};
use crate::orchestrator::Orchestrator;
use crate::simulator::Simulator;
use crate::EstimateError;
use serde::{Deserialize, Serialize};
use xmem_alloc::{AllocatorConfig, TimelinePoint};
use xmem_runtime::{profile_on_cpu, GpuDevice, TrainJobSpec};
use xmem_trace::Trace;

/// Estimation configuration.
#[derive(Debug, Clone)]
pub struct EstimatorConfig {
    /// Target device (capacity + framework overhead model).
    pub device: GpuDevice,
    /// Framework-allocator behaviour (ablation hook).
    pub allocator: AllocatorConfig,
    /// Orchestrator switches (ablation hooks).
    pub orchestrator: Orchestrator,
    /// Record the estimated usage curve.
    pub record_timeline: bool,
    /// Conservative allowance for CUDA-context variance: real framework
    /// overhead fluctuates a few MiB run to run, so the usable estimate
    /// budgets for the upper end (needed for the estimate to work as a
    /// hard memory cap, §4.1.4's second validation round).
    pub context_allowance: u64,
}

impl EstimatorConfig {
    /// Paper-default configuration for a target device.
    #[must_use]
    pub fn for_device(device: GpuDevice) -> Self {
        EstimatorConfig {
            device,
            allocator: AllocatorConfig::pytorch_defaults(),
            orchestrator: Orchestrator::default(),
            record_timeline: false,
            context_allowance: 8 << 20,
        }
    }

    /// Enables usage-curve recording.
    #[must_use]
    pub fn with_timeline(mut self) -> Self {
        self.record_timeline = true;
        self
    }
}

/// Per-category block statistics of an analysis (diagnostics and the
/// detailed report).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnalysisStats {
    /// `(category name, block count, total bytes)` triples.
    pub categories: Vec<(String, usize, u64)>,
    /// Blocks dropped by the script filter.
    pub filtered_blocks: usize,
    /// Blocks whose lifecycle the Orchestrator adjusted.
    pub adjusted_blocks: usize,
    /// Lifecycle anomalies (unmatched frees).
    pub unmatched_frees: usize,
}

/// The estimation result (paper: `M̂^peak` plus the optional usage curve).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Estimate {
    /// Estimated peak total device usage: job segments + framework
    /// overhead. Directly comparable with NVML-sampled ground truth.
    pub peak_bytes: u64,
    /// Estimated job-only peak (segment memory, no framework overhead).
    pub job_peak_bytes: u64,
    /// Estimated peak tensor (allocated) bytes.
    pub tensor_peak_bytes: u64,
    /// Predicted OOM on the target device (Eq. 1).
    pub oom_predicted: bool,
    /// Estimated usage curve when recording was enabled.
    pub curve: Vec<TimelinePoint>,
    /// Analysis diagnostics.
    pub stats: AnalysisStats,
}

/// The xMem estimator.
#[derive(Debug, Clone)]
pub struct Estimator {
    config: EstimatorConfig,
}

impl Estimator {
    /// Creates an estimator.
    #[must_use]
    pub fn new(config: EstimatorConfig) -> Self {
        Estimator { config }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &EstimatorConfig {
        &self.config
    }

    /// Estimates from an existing CPU profiler trace (the a-priori path:
    /// the job never ran on a GPU).
    ///
    /// # Errors
    /// Propagates Analyzer failures for malformed traces.
    pub fn estimate_trace(&self, trace: &Trace) -> Result<Estimate, EstimateError> {
        let analyzed = Analyzer::new().analyze(trace)?;
        Ok(self.estimate_analyzed(&analyzed))
    }

    /// Estimates from an already-analyzed trace. This is the cache-friendly
    /// entry point: profiling and analysis are pure functions of the job
    /// spec, so services can memoize an [`AnalyzedTrace`] and re-run only
    /// the device-dependent orchestration + simulation stages.
    #[must_use]
    pub fn estimate_analyzed(&self, analyzed: &AnalyzedTrace) -> Estimate {
        let sequence = self.config.orchestrator.orchestrate(analyzed);

        let device = &self.config.device;
        let mut simulator = Simulator {
            allocator: self.config.allocator.clone(),
            capacity: Some(device.capacity - device.init_bytes),
            framework_bytes: device.framework_bytes,
            record_timeline: self.config.record_timeline,
        };
        if self.config.record_timeline {
            simulator = simulator.with_timeline();
        }
        let sim = simulator.replay(&sequence);

        let job_peak = sim.peak_reserved;
        let peak_total = job_peak + device.framework_bytes + self.config.context_allowance;
        let oom_predicted = sim.oom || peak_total > device.capacity - device.init_bytes;

        let mut categories: Vec<(String, usize, u64)> = Vec::new();
        for cat in [
            BlockCategory::Parameter,
            BlockCategory::BatchData,
            BlockCategory::Activation,
            BlockCategory::Gradient,
            BlockCategory::BackwardTemp,
            BlockCategory::OptimizerState,
            BlockCategory::OptimizerScratch,
            BlockCategory::Workspace,
            BlockCategory::Script,
        ] {
            categories.push((format!("{cat:?}"), analyzed.count(cat), analyzed.bytes(cat)));
        }

        Estimate {
            peak_bytes: peak_total,
            job_peak_bytes: job_peak,
            tensor_peak_bytes: sim.peak_allocated,
            oom_predicted,
            curve: sim.timeline,
            stats: AnalysisStats {
                categories,
                filtered_blocks: sequence.filtered_blocks,
                adjusted_blocks: sequence.adjusted_blocks,
                unmatched_frees: analyzed.lifecycle_stats.unmatched_frees,
            },
        }
    }

    /// Profiles the job on the CPU backend, then estimates — the
    /// end-to-end a-priori workflow of the paper's Fig. 4.
    ///
    /// # Errors
    /// Propagates Analyzer failures (the generated trace is well-formed,
    /// so failures indicate configuration errors).
    pub fn estimate_job(&self, spec: &TrainJobSpec) -> Result<Estimate, EstimateError> {
        let trace = profile_on_cpu(spec);
        self.estimate_trace(&trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmem_models::ModelId;
    use xmem_optim::OptimizerKind;
    use xmem_runtime::{run_on_gpu, ZeroGradPos};

    fn spec(model: ModelId, opt: OptimizerKind, batch: usize) -> TrainJobSpec {
        TrainJobSpec::new(model, opt, batch).with_iterations(3)
    }

    fn accuracy(model: ModelId, opt: OptimizerKind, batch: usize) -> f64 {
        let device = GpuDevice::rtx3060();
        let s = spec(model, opt, batch);
        let est = Estimator::new(EstimatorConfig::for_device(device))
            .estimate_job(&s)
            .unwrap();
        let gt = run_on_gpu(&s, &device, None, false);
        assert!(!gt.oom, "ground truth must fit for accuracy checks");
        (est.peak_bytes as f64 - gt.peak_nvml as f64).abs() / gt.peak_nvml as f64
    }

    #[test]
    fn small_cnn_estimate_is_accurate() {
        let err = accuracy(ModelId::MobileNetV3Small, OptimizerKind::Adam, 64);
        assert!(err < 0.10, "relative error {err:.3} too high");
    }

    #[test]
    fn transformer_estimate_is_accurate() {
        let err = accuracy(ModelId::DistilGpt2, OptimizerKind::AdamW, 8);
        assert!(err < 0.10, "relative error {err:.3} too high");
    }

    #[test]
    fn estimate_includes_framework_overhead() {
        let device = GpuDevice::rtx3060();
        let s = spec(ModelId::MobileNetV3Small, OptimizerKind::Adam, 8);
        let est = Estimator::new(EstimatorConfig::for_device(device))
            .estimate_job(&s)
            .unwrap();
        assert_eq!(
            est.peak_bytes,
            est.job_peak_bytes + device.framework_bytes + (8 << 20)
        );
        assert!(est.tensor_peak_bytes <= est.job_peak_bytes);
    }

    #[test]
    fn oom_is_predicted_when_job_exceeds_capacity() {
        // Pythia-1B with AdamW needs ~16 GiB of params+grads+state alone —
        // it cannot fit a 12 GiB device at any batch size.
        let device = GpuDevice::rtx3060();
        let s = spec(ModelId::Pythia1B, OptimizerKind::AdamW, 2);
        let est = Estimator::new(EstimatorConfig::for_device(device))
            .estimate_job(&s)
            .unwrap();
        assert!(est.oom_predicted);
        let gt = run_on_gpu(&s, &device, None, false);
        assert!(gt.oom, "ground truth agrees");
    }

    #[test]
    fn zero_grad_placement_shifts_estimate() {
        let device = GpuDevice::rtx3060();
        let pos0 = spec(ModelId::DistilGpt2, OptimizerKind::AdamW, 8);
        let pos1 = pos0.clone().with_zero_grad(ZeroGradPos::IterStart);
        let estimator = Estimator::new(EstimatorConfig::for_device(device));
        let e0 = estimator.estimate_job(&pos0).unwrap();
        let e1 = estimator.estimate_job(&pos1).unwrap();
        assert_ne!(e0.peak_bytes, e1.peak_bytes, "Fig. 1 sensitivity");
    }

    #[test]
    fn curve_is_available_on_request() {
        let device = GpuDevice::rtx3060();
        let s = spec(ModelId::MobileNetV3Small, OptimizerKind::Adam, 8);
        let est = Estimator::new(EstimatorConfig::for_device(device).with_timeline())
            .estimate_job(&s)
            .unwrap();
        assert!(!est.curve.is_empty());
        let peak_from_curve = est.curve.iter().map(|p| p.reserved).max().unwrap();
        assert_eq!(peak_from_curve, est.job_peak_bytes);
    }
}
