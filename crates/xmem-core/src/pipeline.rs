//! The public estimation facade: Analyzer → Orchestrator → Simulator.

use crate::analyzer::{AnalyzedTrace, Analyzer, BlockCategory};
use crate::orchestrator::{OrchestratedSequence, Orchestrator};
use crate::param::{EventBuffer, ParamRejection, ParamReplay};
use crate::simulator::Simulator;
use crate::EstimateError;
use serde::{Deserialize, Serialize};
use xmem_alloc::{AllocatorConfig, TimelinePoint};
use xmem_runtime::{profile_on_cpu, GpuDevice, TrainJobSpec};
use xmem_trace::Trace;

/// Estimation configuration.
#[derive(Debug, Clone)]
pub struct EstimatorConfig {
    /// Target device (capacity + framework overhead model).
    pub device: GpuDevice,
    /// Framework-allocator behaviour (ablation hook).
    pub allocator: AllocatorConfig,
    /// Orchestrator switches (ablation hooks).
    pub orchestrator: Orchestrator,
    /// Record the estimated usage curve.
    pub record_timeline: bool,
    /// Conservative allowance for CUDA-context variance: real framework
    /// overhead fluctuates a few MiB run to run, so the usable estimate
    /// budgets for the upper end (needed for the estimate to work as a
    /// hard memory cap, §4.1.4's second validation round).
    pub context_allowance: u64,
}

impl EstimatorConfig {
    /// Paper-default configuration for a target device.
    #[must_use]
    pub fn for_device(device: GpuDevice) -> Self {
        EstimatorConfig {
            device,
            allocator: AllocatorConfig::pytorch_defaults(),
            orchestrator: Orchestrator::default(),
            record_timeline: false,
            context_allowance: 8 << 20,
        }
    }

    /// Enables usage-curve recording.
    #[must_use]
    pub fn with_timeline(mut self) -> Self {
        self.record_timeline = true;
        self
    }
}

/// Per-category block statistics of an analysis (diagnostics and the
/// detailed report).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnalysisStats {
    /// `(category name, block count, total bytes)` triples.
    pub categories: Vec<(String, usize, u64)>,
    /// Blocks dropped by the script filter.
    pub filtered_blocks: usize,
    /// Blocks whose lifecycle the Orchestrator adjusted.
    pub adjusted_blocks: usize,
    /// Lifecycle anomalies (unmatched frees).
    pub unmatched_frees: usize,
}

/// The estimation result (paper: `M̂^peak` plus the optional usage curve).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Estimate {
    /// Estimated peak total device usage: job segments + framework
    /// overhead. Directly comparable with NVML-sampled ground truth.
    pub peak_bytes: u64,
    /// Estimated job-only peak (segment memory, no framework overhead).
    pub job_peak_bytes: u64,
    /// Estimated peak tensor (allocated) bytes.
    pub tensor_peak_bytes: u64,
    /// Predicted OOM on the target device (Eq. 1).
    pub oom_predicted: bool,
    /// Estimated usage curve when recording was enabled.
    pub curve: Vec<TimelinePoint>,
    /// Analysis diagnostics.
    pub stats: AnalysisStats,
}

/// The device-independent replay artifact behind the pressure-aware fast
/// path: the orchestrated sequence replayed **once** against an unbounded
/// simulator.
///
/// The two-level allocator simulation only consults device capacity in two
/// places — proactive garbage collection and the reclaim-then-OOM path on
/// a failed device allocation. A device roomy enough that neither can
/// trigger therefore replays **bit-identically** to the unbounded device,
/// and its whole [`Estimate`] can be *derived* from this artifact in O(1)
/// ([`Estimator::derive_from_replay`]) instead of re-walking the event
/// sequence. Serving layers cache one `UnboundedReplay` per job and pay a
/// full stateful replay only for capacity-pressured devices, where
/// reclaim/OOM genuinely diverge.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UnboundedReplay {
    /// Peak job segment bytes on the unbounded device (the job's true
    /// segment high-water mark, `M̂^peak` before overheads).
    pub peak_reserved: u64,
    /// Peak tensor (allocated) bytes.
    pub peak_allocated: u64,
    /// Orchestrated events replayed (diagnostics; also the unit of the
    /// perf harness's replay-throughput benchmark).
    pub events: usize,
    /// The analysis diagnostics a derived estimate carries — identical to
    /// what a full replay would report, since they never depend on the
    /// device.
    pub stats: AnalysisStats,
}

/// The xMem estimator.
#[derive(Debug, Clone)]
pub struct Estimator {
    config: EstimatorConfig,
}

/// Page granularity of the simulated device level — the same
/// [`DeviceAllocator::DEFAULT_PAGE`](xmem_alloc::DeviceAllocator::DEFAULT_PAGE)
/// the [`Simulator`] hands to its device, so the fast-path exactness check
/// and the bounded replay can never disagree on granularity. Segment sizes
/// that are multiples of it make framework-level and device-level
/// accounting agree exactly.
const DEVICE_PAGE: usize = xmem_alloc::DeviceAllocator::DEFAULT_PAGE as usize;

impl Estimator {
    /// Creates an estimator.
    #[must_use]
    pub fn new(config: EstimatorConfig) -> Self {
        Estimator { config }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &EstimatorConfig {
        &self.config
    }

    /// Estimates from an existing CPU profiler trace (the a-priori path:
    /// the job never ran on a GPU).
    ///
    /// # Errors
    /// Propagates Analyzer failures for malformed traces.
    pub fn estimate_trace(&self, trace: &Trace) -> Result<Estimate, EstimateError> {
        let analyzed = Analyzer::new().analyze(trace)?;
        Ok(self.estimate_analyzed(&analyzed))
    }

    /// Estimates from an already-analyzed trace. This is the cache-friendly
    /// entry point: profiling and analysis are pure functions of the job
    /// spec, so services can memoize an [`AnalyzedTrace`] and re-run only
    /// the device-dependent orchestration + simulation stages.
    #[must_use]
    pub fn estimate_analyzed(&self, analyzed: &AnalyzedTrace) -> Estimate {
        let sequence = self.config.orchestrator.orchestrate(analyzed);

        let device = &self.config.device;
        let mut simulator = Simulator {
            allocator: self.config.allocator.clone(),
            capacity: Some(device.capacity - device.init_bytes),
            framework_bytes: device.framework_bytes,
            record_timeline: self.config.record_timeline,
        };
        if self.config.record_timeline {
            simulator = simulator.with_timeline();
        }
        let sim = simulator.replay(&sequence);

        let job_peak = sim.peak_reserved;
        let peak_total = job_peak + device.framework_bytes + self.config.context_allowance;
        let oom_predicted = sim.oom || peak_total > device.capacity - device.init_bytes;

        Estimate {
            peak_bytes: peak_total,
            job_peak_bytes: job_peak,
            tensor_peak_bytes: sim.peak_allocated,
            oom_predicted,
            curve: sim.timeline,
            stats: analysis_stats(analyzed, &sequence),
        }
    }

    /// Replays `analyzed` once against an **unbounded** device, producing
    /// the device-independent artifact the pressure-aware fast path
    /// derives roomy-device estimates from. Orchestration runs under this
    /// estimator's configuration, so a derived estimate and a full
    /// [`estimate_analyzed`](Self::estimate_analyzed) replay see the same
    /// event sequence.
    #[must_use]
    pub fn replay_unbounded(&self, analyzed: &AnalyzedTrace) -> UnboundedReplay {
        let sequence = self.config.orchestrator.orchestrate(analyzed);
        let sim = Simulator {
            allocator: self.config.allocator.clone(),
            capacity: None,
            framework_bytes: 0,
            record_timeline: false,
        }
        .replay(&sequence);
        UnboundedReplay {
            peak_reserved: sim.peak_reserved,
            peak_allocated: sim.peak_allocated,
            events: sequence.events.len(),
            stats: analysis_stats(analyzed, &sequence),
        }
    }

    /// The job-usable capacity under which this estimator's device can be
    /// served by derivation — or `None` when the configuration rules the
    /// fast path out entirely.
    ///
    /// Derivation is exact only when the bounded replay provably cannot
    /// consult capacity: proactive garbage collection must be off, no
    /// usage curve may be requested, and every segment size the allocator
    /// can produce must be a whole number of device pages (so framework-
    /// and device-level accounting agree byte-for-byte). All of that holds
    /// for [`EstimatorConfig::for_device`]; ablated configurations fall
    /// back to the full replay.
    #[must_use]
    pub fn fast_path_capacity(&self) -> Option<u64> {
        let allocator = &self.config.allocator;
        let page_aligned = allocator.small_buffer.is_multiple_of(DEVICE_PAGE)
            && allocator.large_buffer.is_multiple_of(DEVICE_PAGE)
            && allocator.round_large > 0
            && allocator.round_large.is_multiple_of(DEVICE_PAGE);
        if allocator.gc_threshold.is_some() || self.config.record_timeline || !page_aligned {
            return None;
        }
        let device = &self.config.device;
        let job_capacity = device.capacity.checked_sub(device.init_bytes)?;
        Some(job_capacity.saturating_sub(device.framework_bytes))
    }

    /// Derives this device's estimate from a cached [`UnboundedReplay`]
    /// without replaying, when the device is roomy enough for the
    /// derivation to be **bit-identical** to a full replay: its usable
    /// capacity must cover the unbounded segment peak, so neither reclaim
    /// nor OOM can fire. Returns `None` under capacity pressure (or for
    /// configurations [`fast_path_capacity`](Self::fast_path_capacity)
    /// rules out) — the caller then pays the full stateful replay.
    #[must_use]
    pub fn derive_from_replay(&self, replay: &UnboundedReplay) -> Option<Estimate> {
        let usable = self.fast_path_capacity()?;
        if replay.peak_reserved > usable {
            return None;
        }
        let device = &self.config.device;
        let peak_total =
            replay.peak_reserved + device.framework_bytes + self.config.context_allowance;
        Some(Estimate {
            peak_bytes: peak_total,
            job_peak_bytes: replay.peak_reserved,
            tensor_peak_bytes: replay.peak_allocated,
            // `sim.oom` is provably false on a roomy device; only the
            // context-allowance headroom check remains.
            oom_predicted: peak_total > device.capacity - device.init_bytes,
            curve: Vec::new(),
            stats: replay.stats.clone(),
        })
    }

    /// Whether this configuration admits the **incremental sweep** path:
    /// replaying a [materialized](ParamReplay::materialize) event buffer
    /// must be provably identical to the full per-batch pipeline.
    /// Proactive garbage collection and timeline recording both read the
    /// clock in ways a parameterized stream's nominal timestamps cannot
    /// honor, so either rules the path out. (Unlike
    /// [`fast_path_capacity`](Self::fast_path_capacity), page alignment
    /// is irrelevant here: the materialized buffer is replayed through
    /// the real bounded simulator, not derived arithmetically.)
    #[must_use]
    pub fn incremental_exact(&self) -> bool {
        self.config.allocator.gc_threshold.is_none() && !self.config.record_timeline
    }

    /// Fits a [`ParamReplay`] from profiled anchors under this
    /// estimator's orchestrator (see [`ParamReplay::fit`]).
    ///
    /// # Errors
    /// Returns the fit's [`ParamRejection`] when the delta model cannot
    /// be proven exact — callers fall back to full per-batch replays.
    pub fn fit_param_replay(
        &self,
        anchors: &[(usize, &AnalyzedTrace)],
    ) -> Result<ParamReplay, ParamRejection> {
        ParamReplay::fit(&self.config.orchestrator, anchors)
    }

    /// Estimates from a pre-orchestrated event buffer (the incremental
    /// sweep's bounded leg): replays it against this device exactly like
    /// [`estimate_analyzed`](Self::estimate_analyzed) replays a fresh
    /// orchestration, with `stats` standing in for the analysis-stage
    /// diagnostics. Callers must hold the
    /// [`incremental_exact`](Self::incremental_exact) gate, so no usage
    /// curve is recorded.
    #[must_use]
    pub fn estimate_buffer(&self, buffer: &EventBuffer, stats: AnalysisStats) -> Estimate {
        let device = &self.config.device;
        let sim = Simulator {
            allocator: self.config.allocator.clone(),
            capacity: Some(device.capacity - device.init_bytes),
            framework_bytes: device.framework_bytes,
            record_timeline: false,
        }
        .replay_buffer(buffer);

        let job_peak = sim.peak_reserved;
        let peak_total = job_peak + device.framework_bytes + self.config.context_allowance;
        Estimate {
            peak_bytes: peak_total,
            job_peak_bytes: job_peak,
            tensor_peak_bytes: sim.peak_allocated,
            oom_predicted: sim.oom || peak_total > device.capacity - device.init_bytes,
            curve: Vec::new(),
            stats,
        }
    }

    /// Replays a pre-orchestrated event buffer against an unbounded
    /// device — the buffer-sourced twin of
    /// [`replay_unbounded`](Self::replay_unbounded), letting sweeps feed
    /// one materialized buffer to
    /// [`derive_from_replay`](Self::derive_from_replay) for every roomy
    /// device in a fleet.
    #[must_use]
    pub fn replay_buffer_unbounded(
        &self,
        buffer: &EventBuffer,
        stats: AnalysisStats,
    ) -> UnboundedReplay {
        let sim = Simulator {
            allocator: self.config.allocator.clone(),
            capacity: None,
            framework_bytes: 0,
            record_timeline: false,
        }
        .replay_buffer(buffer);
        UnboundedReplay {
            peak_reserved: sim.peak_reserved,
            peak_allocated: sim.peak_allocated,
            events: buffer.len(),
            stats,
        }
    }

    /// Profiles the job on the CPU backend, then estimates — the
    /// end-to-end a-priori workflow of the paper's Fig. 4 — unchanged by
    /// the fast path, which serving layers opt into explicitly.
    ///
    /// # Errors
    /// Propagates Analyzer failures (the generated trace is well-formed,
    /// so failures indicate configuration errors).
    pub fn estimate_job(&self, spec: &TrainJobSpec) -> Result<Estimate, EstimateError> {
        let trace = profile_on_cpu(spec);
        self.estimate_trace(&trace)
    }
}

/// The per-category diagnostics both the full replay and the derived fast
/// path attach to an [`Estimate`]; everything here is a pure function of
/// the analysis and the orchestrated sequence — never of the device.
pub(crate) fn analysis_stats(
    analyzed: &AnalyzedTrace,
    sequence: &OrchestratedSequence,
) -> AnalysisStats {
    let mut categories: Vec<(String, usize, u64)> = Vec::new();
    for cat in [
        BlockCategory::Parameter,
        BlockCategory::BatchData,
        BlockCategory::Activation,
        BlockCategory::Gradient,
        BlockCategory::BackwardTemp,
        BlockCategory::OptimizerState,
        BlockCategory::OptimizerScratch,
        BlockCategory::Workspace,
        BlockCategory::Script,
    ] {
        categories.push((format!("{cat:?}"), analyzed.count(cat), analyzed.bytes(cat)));
    }
    AnalysisStats {
        categories,
        filtered_blocks: sequence.filtered_blocks,
        adjusted_blocks: sequence.adjusted_blocks,
        unmatched_frees: analyzed.lifecycle_stats.unmatched_frees,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmem_models::ModelId;
    use xmem_optim::OptimizerKind;
    use xmem_runtime::{run_on_gpu, ZeroGradPos};

    fn spec(model: ModelId, opt: OptimizerKind, batch: usize) -> TrainJobSpec {
        TrainJobSpec::new(model, opt, batch).with_iterations(3)
    }

    fn accuracy(model: ModelId, opt: OptimizerKind, batch: usize) -> f64 {
        let device = GpuDevice::rtx3060();
        let s = spec(model, opt, batch);
        let est = Estimator::new(EstimatorConfig::for_device(device))
            .estimate_job(&s)
            .unwrap();
        let gt = run_on_gpu(&s, &device, None, false);
        assert!(!gt.oom, "ground truth must fit for accuracy checks");
        (est.peak_bytes as f64 - gt.peak_nvml as f64).abs() / gt.peak_nvml as f64
    }

    #[test]
    fn small_cnn_estimate_is_accurate() {
        let err = accuracy(ModelId::MobileNetV3Small, OptimizerKind::Adam, 64);
        assert!(err < 0.10, "relative error {err:.3} too high");
    }

    #[test]
    fn transformer_estimate_is_accurate() {
        let err = accuracy(ModelId::DistilGpt2, OptimizerKind::AdamW, 8);
        assert!(err < 0.10, "relative error {err:.3} too high");
    }

    #[test]
    fn estimate_includes_framework_overhead() {
        let device = GpuDevice::rtx3060();
        let s = spec(ModelId::MobileNetV3Small, OptimizerKind::Adam, 8);
        let est = Estimator::new(EstimatorConfig::for_device(device))
            .estimate_job(&s)
            .unwrap();
        assert_eq!(
            est.peak_bytes,
            est.job_peak_bytes + device.framework_bytes + (8 << 20)
        );
        assert!(est.tensor_peak_bytes <= est.job_peak_bytes);
    }

    #[test]
    fn oom_is_predicted_when_job_exceeds_capacity() {
        // Pythia-1B with AdamW needs ~16 GiB of params+grads+state alone —
        // it cannot fit a 12 GiB device at any batch size.
        let device = GpuDevice::rtx3060();
        let s = spec(ModelId::Pythia1B, OptimizerKind::AdamW, 2);
        let est = Estimator::new(EstimatorConfig::for_device(device))
            .estimate_job(&s)
            .unwrap();
        assert!(est.oom_predicted);
        let gt = run_on_gpu(&s, &device, None, false);
        assert!(gt.oom, "ground truth agrees");
    }

    #[test]
    fn zero_grad_placement_shifts_estimate() {
        let device = GpuDevice::rtx3060();
        let pos0 = spec(ModelId::DistilGpt2, OptimizerKind::AdamW, 8);
        let pos1 = pos0.clone().with_zero_grad(ZeroGradPos::IterStart);
        let estimator = Estimator::new(EstimatorConfig::for_device(device));
        let e0 = estimator.estimate_job(&pos0).unwrap();
        let e1 = estimator.estimate_job(&pos1).unwrap();
        assert_ne!(e0.peak_bytes, e1.peak_bytes, "Fig. 1 sensitivity");
    }

    #[test]
    fn derived_estimate_is_bit_identical_on_roomy_devices() {
        // Every builtin device fits this job with room to spare, so the
        // derivation must reproduce the full replay exactly — including
        // the diagnostics.
        let s = spec(ModelId::MobileNetV3Small, OptimizerKind::Adam, 8);
        let trace = xmem_runtime::profile_on_cpu(&s);
        let analyzed = Analyzer::new().analyze(&trace).unwrap();
        for device in [
            GpuDevice::rtx3060(),
            GpuDevice::rtx4060(),
            GpuDevice::a100_40g(),
        ] {
            let estimator = Estimator::new(EstimatorConfig::for_device(device));
            let replay = estimator.replay_unbounded(&analyzed);
            assert!(replay.events > 0);
            let derived = estimator
                .derive_from_replay(&replay)
                .expect("roomy device qualifies for the fast path");
            assert_eq!(derived, estimator.estimate_analyzed(&analyzed));
        }
    }

    #[test]
    fn derivation_refuses_pressured_devices() {
        // A device whose usable capacity sits below the unbounded segment
        // peak may diverge (reclaim / OOM) — the fast path must bow out.
        let s = spec(ModelId::DistilGpt2, OptimizerKind::AdamW, 8);
        let trace = xmem_runtime::profile_on_cpu(&s);
        let analyzed = Analyzer::new().analyze(&trace).unwrap();
        let roomy = Estimator::new(EstimatorConfig::for_device(GpuDevice::a100_40g()));
        let replay = roomy.replay_unbounded(&analyzed);
        let tiny = GpuDevice {
            name: "test-pressured",
            capacity: replay.peak_reserved + (600 << 20),
            framework_bytes: 600 << 20,
            init_bytes: 1 << 20,
        };
        let estimator = Estimator::new(EstimatorConfig::for_device(tiny));
        assert!(
            estimator.fast_path_capacity().unwrap() < replay.peak_reserved,
            "the test device must actually be pressured"
        );
        assert_eq!(estimator.derive_from_replay(&replay), None);
    }

    #[test]
    fn derivation_refuses_inexact_configurations() {
        let s = spec(ModelId::MobileNetV3Small, OptimizerKind::Adam, 8);
        let trace = xmem_runtime::profile_on_cpu(&s);
        let analyzed = Analyzer::new().analyze(&trace).unwrap();
        let device = GpuDevice::a100_40g();
        let replay =
            Estimator::new(EstimatorConfig::for_device(device)).replay_unbounded(&analyzed);

        // Usage-curve recording needs the stateful replay.
        let recording = Estimator::new(EstimatorConfig::for_device(device).with_timeline());
        assert_eq!(recording.fast_path_capacity(), None);
        assert_eq!(recording.derive_from_replay(&replay), None);

        // Proactive GC consults capacity mid-replay.
        let mut gc = EstimatorConfig::for_device(device);
        gc.allocator.gc_threshold = Some(0.8);
        assert_eq!(Estimator::new(gc).fast_path_capacity(), None);

        // Page-misaligned segment sizes break device-level accounting
        // parity.
        let mut odd = EstimatorConfig::for_device(device);
        odd.allocator.large_buffer = 20 * (1 << 20) + 512;
        assert_eq!(Estimator::new(odd).fast_path_capacity(), None);
    }

    #[test]
    fn curve_is_available_on_request() {
        let device = GpuDevice::rtx3060();
        let s = spec(ModelId::MobileNetV3Small, OptimizerKind::Adam, 8);
        let est = Estimator::new(EstimatorConfig::for_device(device).with_timeline())
            .estimate_job(&s)
            .unwrap();
        assert!(!est.curve.is_empty());
        let peak_from_curve = est.curve.iter().map(|p| p.reserved).max().unwrap();
        assert_eq!(peak_from_curve, est.job_peak_bytes);
    }
}
