//! Device-matrix result types.
//!
//! A per-cluster estimation service answers the scheduler question "which
//! of my device types fits this job?" for *every* pending job: one cached
//! CPU analysis per job, replayed against N device simulations. The types
//! here carry that answer — an M-jobs × D-devices grid of estimates —
//! plus the placement summary a scheduler actually consumes.

use crate::{Estimate, EstimateError};
use xmem_runtime::TrainJobSpec;

/// One cell of a device matrix: one job's estimate on one named device.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixCell {
    /// Registry name of the simulated device (the name the matrix query
    /// addressed it by, not the marketing name).
    pub device: String,
    /// The estimate, or the per-job analysis failure. Device-independent
    /// failures (a degenerate trace) repeat across the row's cells.
    pub estimate: Result<Estimate, EstimateError>,
}

impl MatrixCell {
    /// Whether this cell predicts the job fits the device (estimation
    /// succeeded and no OOM is predicted).
    #[must_use]
    pub fn fits(&self) -> bool {
        matches!(&self.estimate, Ok(e) if !e.oom_predicted)
    }
}

/// One row of a device matrix: a job and its estimate on every device.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixRow {
    /// The job this row estimates.
    pub spec: TrainJobSpec,
    /// Per-device cells, in the matrix's device order.
    pub cells: Vec<MatrixCell>,
}

impl MatrixRow {
    /// The cell for `device`, if that device is part of the matrix.
    #[must_use]
    pub fn cell(&self, device: &str) -> Option<&MatrixCell> {
        self.cells.iter().find(|c| c.device == device)
    }

    /// Names of the devices this job is predicted to fit, in the matrix's
    /// device order.
    #[must_use]
    pub fn fitting_devices(&self) -> Vec<&str> {
        self.cells
            .iter()
            .filter(|c| c.fits())
            .map(|c| c.device.as_str())
            .collect()
    }
}

/// An M-jobs × D-devices grid of estimates: one cached analysis per job,
/// one allocator simulation per cell.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceMatrix {
    /// Device names, in column order (every row's `cells` follow it).
    pub devices: Vec<String>,
    /// Per-job rows, in the query's job order.
    pub rows: Vec<MatrixRow>,
}

impl DeviceMatrix {
    /// The cell at (`row`, `device`), if both exist.
    #[must_use]
    pub fn cell(&self, row: usize, device: &str) -> Option<&MatrixCell> {
        self.rows.get(row).and_then(|r| r.cell(device))
    }

    /// Total number of cells (jobs × devices).
    #[must_use]
    pub fn num_cells(&self) -> usize {
        self.rows.len() * self.devices.len()
    }

    /// Whether the matrix has no cells.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.num_cells() == 0
    }
}

/// A placement decision: the chosen device and the estimate that
/// justified it.
#[derive(Debug, Clone, PartialEq)]
pub struct DevicePlacement {
    /// Registry name of the chosen device.
    pub device: String,
    /// The job's estimate on that device (never an OOM prediction).
    pub estimate: Estimate,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::AnalysisStats;
    use xmem_models::ModelId;
    use xmem_optim::OptimizerKind;

    fn estimate(oom: bool) -> Estimate {
        Estimate {
            peak_bytes: 100,
            job_peak_bytes: 80,
            tensor_peak_bytes: 60,
            oom_predicted: oom,
            curve: Vec::new(),
            stats: AnalysisStats::default(),
        }
    }

    fn row(cells: Vec<(&str, Result<Estimate, EstimateError>)>) -> MatrixRow {
        MatrixRow {
            spec: TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 4),
            cells: cells
                .into_iter()
                .map(|(device, estimate)| MatrixCell {
                    device: device.to_string(),
                    estimate,
                })
                .collect(),
        }
    }

    #[test]
    fn fitting_devices_excludes_oom_and_errors() {
        let row = row(vec![
            ("small", Ok(estimate(true))),
            ("big", Ok(estimate(false))),
            ("broken", Err(EstimateError::EmptyTrace)),
        ]);
        assert_eq!(row.fitting_devices(), vec!["big"]);
        assert!(row.cell("small").is_some());
        assert!(row.cell("missing").is_none());
    }

    #[test]
    fn matrix_indexing_and_counts() {
        let matrix = DeviceMatrix {
            devices: vec!["a".to_string(), "b".to_string()],
            rows: vec![row(vec![
                ("a", Ok(estimate(false))),
                ("b", Ok(estimate(true))),
            ])],
        };
        assert_eq!(matrix.num_cells(), 2);
        assert!(!matrix.is_empty());
        assert!(matrix.cell(0, "a").unwrap().fits());
        assert!(!matrix.cell(0, "b").unwrap().fits());
        assert!(matrix.cell(1, "a").is_none());
    }
}
