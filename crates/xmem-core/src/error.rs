use std::error::Error;
use std::fmt;

/// Failure of the estimation pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EstimateError {
    /// The trace contains no memory instants to analyze.
    EmptyTrace,
    /// The trace lacks iteration markers (`ProfilerStep#k`), so phases
    /// cannot be delimited.
    MissingIterations,
}

impl fmt::Display for EstimateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EstimateError::EmptyTrace => write!(f, "trace contains no memory events"),
            EstimateError::MissingIterations => {
                write!(f, "trace contains no ProfilerStep iteration markers")
            }
        }
    }
}

impl Error for EstimateError {}
