use std::error::Error;
use std::fmt;

/// Failure of the estimation pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EstimateError {
    /// The trace contains no memory instants to analyze.
    EmptyTrace,
    /// The trace lacks iteration markers (`ProfilerStep#k`), so phases
    /// cannot be delimited.
    MissingIterations,
    /// The query was cancelled before a result was produced (async front
    /// end: `EstimateFuture::cancel`).
    Cancelled,
    /// The query's deadline elapsed before a result was produced (async
    /// front end: per-query deadlines).
    DeadlineExceeded,
    /// The named device is not registered with the service's device
    /// registry (multi-device front end: matrix and placement queries
    /// address simulation targets by name).
    UnknownDevice(String),
    /// The estimation job failed internally — a panic unwound out of the
    /// pipeline and was caught by the worker pool, which settled the query
    /// with the panic payload instead of stranding the caller.
    Internal(String),
}

impl fmt::Display for EstimateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EstimateError::EmptyTrace => write!(f, "trace contains no memory events"),
            EstimateError::MissingIterations => {
                write!(f, "trace contains no ProfilerStep iteration markers")
            }
            EstimateError::Cancelled => write!(f, "estimation query was cancelled"),
            EstimateError::DeadlineExceeded => {
                write!(f, "estimation query missed its deadline")
            }
            EstimateError::UnknownDevice(name) => {
                write!(f, "device `{name}` is not in the device registry")
            }
            EstimateError::Internal(message) => {
                write!(f, "estimation job failed internally: {message}")
            }
        }
    }
}

impl Error for EstimateError {}
