//! Memory-block lifecycle reconstruction (paper §3.2, Analyzer step 1).
//!
//! Raw `cpu_instant_event`s are a flat stream of `(ts, addr, ±bytes)`
//! records with no linkage. This module pairs them into blocks — size,
//! allocation time, deallocation time — while correctly handling address
//! reuse (the CPU allocator hands freed addresses back almost immediately).
//! Blocks lacking a deallocation are persistent for the trace duration.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use xmem_trace::Trace;

/// One reconstructed memory block ("memory block" in the paper always
/// refers to these lifecycle entities).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryBlock {
    /// Stable index in allocation order.
    pub id: usize,
    /// Address the block lived at (reused addresses yield several blocks).
    pub addr: u64,
    /// Size in bytes.
    pub bytes: u64,
    /// Allocation timestamp (µs).
    pub alloc_ts: u64,
    /// Deallocation timestamp, `None` when the block survives the trace.
    pub free_ts: Option<u64>,
}

impl MemoryBlock {
    /// Whether the block survives to the end of the trace.
    #[must_use]
    pub fn is_persistent(&self) -> bool {
        self.free_ts.is_none()
    }
}

/// Anomaly counters from reconstruction — used for trace-quality
/// diagnostics and failure-injection tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LifecycleStats {
    /// Frees whose address had no live allocation (skipped).
    pub unmatched_frees: usize,
    /// Frees whose size disagreed with the allocation (size taken from the
    /// allocation side).
    pub size_mismatches: usize,
    /// Blocks with no free event (persistent).
    pub persistent_blocks: usize,
}

/// Reconstructs block lifecycles from a trace's memory instants for one
/// device (`device_id` = -1 for CPU traces).
///
/// The instants are processed in time order; simultaneous events keep
/// trace order, which is emission order — exactly the information a real
/// profiler export preserves.
#[must_use]
pub fn reconstruct_lifecycles(trace: &Trace, device_id: i32) -> (Vec<MemoryBlock>, LifecycleStats) {
    let mut blocks: Vec<MemoryBlock> = Vec::new();
    let mut open: HashMap<u64, Vec<usize>> = HashMap::new();
    let mut stats = LifecycleStats::default();

    for e in trace.memory_instants() {
        if e.args.device != Some(device_id) {
            continue;
        }
        let addr = match e.args.addr {
            Some(a) => a,
            None => continue,
        };
        let bytes = e.args.bytes.unwrap_or(0);
        if bytes > 0 {
            let id = blocks.len();
            blocks.push(MemoryBlock {
                id,
                addr,
                bytes: bytes as u64,
                alloc_ts: e.ts_us,
                free_ts: None,
            });
            open.entry(addr).or_default().push(id);
        } else if bytes < 0 {
            match open.get_mut(&addr).and_then(Vec::pop) {
                Some(id) => {
                    if blocks[id].bytes != (-bytes) as u64 {
                        stats.size_mismatches += 1;
                    }
                    blocks[id].free_ts = Some(e.ts_us);
                }
                None => stats.unmatched_frees += 1,
            }
        }
    }
    stats.persistent_blocks = blocks.iter().filter(|b| b.is_persistent()).count();
    (blocks, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmem_trace::TraceEvent;

    fn trace(events: Vec<TraceEvent>) -> Trace {
        let mut t = Trace::new("t");
        for e in events {
            t.push(e);
        }
        t
    }

    #[test]
    fn pairs_alloc_and_free() {
        let t = trace(vec![
            TraceEvent::mem_alloc(10, 0xa, 512, -1),
            TraceEvent::mem_free(20, 0xa, 512, -1),
        ]);
        let (blocks, stats) = reconstruct_lifecycles(&t, -1);
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].alloc_ts, 10);
        assert_eq!(blocks[0].free_ts, Some(20));
        assert_eq!(stats.unmatched_frees, 0);
        assert_eq!(stats.persistent_blocks, 0);
    }

    #[test]
    fn handles_address_reuse() {
        let t = trace(vec![
            TraceEvent::mem_alloc(10, 0xa, 512, -1),
            TraceEvent::mem_free(20, 0xa, 512, -1),
            TraceEvent::mem_alloc(30, 0xa, 1024, -1),
            TraceEvent::mem_free(40, 0xa, 1024, -1),
        ]);
        let (blocks, _) = reconstruct_lifecycles(&t, -1);
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].free_ts, Some(20));
        assert_eq!(blocks[1].bytes, 1024);
        assert_eq!(blocks[1].free_ts, Some(40));
    }

    #[test]
    fn nested_reuse_is_lifo() {
        // Two live blocks at the same address (possible in torn traces):
        // the free matches the most recent allocation.
        let t = trace(vec![
            TraceEvent::mem_alloc(10, 0xa, 512, -1),
            TraceEvent::mem_alloc(20, 0xa, 256, -1),
            TraceEvent::mem_free(30, 0xa, 256, -1),
        ]);
        let (blocks, stats) = reconstruct_lifecycles(&t, -1);
        assert_eq!(blocks[1].free_ts, Some(30));
        assert!(blocks[0].is_persistent());
        assert_eq!(stats.persistent_blocks, 1);
    }

    #[test]
    fn unmatched_free_is_counted_not_fatal() {
        let t = trace(vec![TraceEvent::mem_free(10, 0xdead, 64, -1)]);
        let (blocks, stats) = reconstruct_lifecycles(&t, -1);
        assert!(blocks.is_empty());
        assert_eq!(stats.unmatched_frees, 1);
    }

    #[test]
    fn size_mismatch_is_tolerated() {
        let t = trace(vec![
            TraceEvent::mem_alloc(10, 0xa, 512, -1),
            TraceEvent::mem_free(20, 0xa, 256, -1),
        ]);
        let (blocks, stats) = reconstruct_lifecycles(&t, -1);
        assert_eq!(blocks[0].bytes, 512);
        assert_eq!(blocks[0].free_ts, Some(20));
        assert_eq!(stats.size_mismatches, 1);
    }

    #[test]
    fn filters_by_device() {
        let t = trace(vec![
            TraceEvent::mem_alloc(10, 0xa, 512, -1),
            TraceEvent::mem_alloc(10, 0xb, 512, 0), // GPU event, ignored
        ]);
        let (blocks, _) = reconstruct_lifecycles(&t, -1);
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].addr, 0xa);
    }
}
