//! Per-layer (component) memory breakdown — the "distribution-prepared"
//! capability of paper §6.2/§6.4: partitioning a model across devices
//! requires memory demand *per layer*, which the Analyzer's attribution
//! already provides. This module aggregates it.

use crate::analyzer::{AnalyzedTrace, BlockCategory};
use crate::orchestrator::Orchestrator;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Memory demand of one model component (module path).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerMemory {
    /// Component path (e.g. `transformer.h.0`); blocks outside any
    /// component aggregate under `"<global>"`.
    pub component: String,
    /// Number of memory blocks attributed to the component.
    pub blocks: usize,
    /// Total bytes ever allocated by the component.
    pub total_bytes: u64,
    /// Bytes that persist for the whole job (parameters, optimizer state).
    pub persistent_bytes: u64,
    /// Peak of simultaneously live bytes from this component alone, under
    /// orchestrated (GPU-semantic) lifecycles — the quantity a pipeline
    /// partitioner must budget per stage.
    pub peak_live_bytes: u64,
}

/// Aggregates an analyzed trace into per-component memory demands, sorted
/// by descending live peak.
#[must_use]
pub fn layer_report(analyzed: &AnalyzedTrace, orchestrator: &Orchestrator) -> Vec<LayerMemory> {
    // Orchestrated timings give GPU-semantic lifecycles; map block id →
    // (alloc_ts, free_ts).
    let sequence = orchestrator.orchestrate(analyzed);
    let mut lifetime: BTreeMap<usize, (u64, u64)> = BTreeMap::new();
    for e in &sequence.events {
        let entry = lifetime.entry(e.block).or_insert((0, 0));
        if e.is_alloc {
            entry.0 = e.ts_us;
        } else {
            entry.1 = e.ts_us;
        }
    }

    let mut groups: BTreeMap<String, Vec<&crate::analyzer::AnalyzedBlock>> = BTreeMap::new();
    for b in &analyzed.blocks {
        if !b.category.is_kept() {
            continue;
        }
        let key = b
            .component
            .clone()
            .unwrap_or_else(|| "<global>".to_string());
        groups.entry(key).or_default().push(b);
    }

    let mut report: Vec<LayerMemory> = groups
        .into_iter()
        .map(|(component, blocks)| {
            let total_bytes = blocks.iter().map(|b| b.block.bytes).sum();
            let persistent_bytes = blocks
                .iter()
                .filter(|b| {
                    matches!(
                        b.category,
                        BlockCategory::Parameter | BlockCategory::OptimizerState
                    ) || b.block.is_persistent()
                })
                .map(|b| b.block.bytes)
                .sum();
            // Sweep-line peak over this component's orchestrated lifetimes.
            let mut events: Vec<(u64, i64)> = Vec::with_capacity(blocks.len() * 2);
            for b in &blocks {
                if let Some(&(alloc, free)) = lifetime.get(&b.block.id) {
                    events.push((alloc, b.block.bytes as i64));
                    events.push((free, -(b.block.bytes as i64)));
                }
            }
            // Frees before allocs at equal timestamps keep the peak tight.
            events.sort_by_key(|&(ts, delta)| (ts, delta));
            let mut live = 0i64;
            let mut peak = 0i64;
            for (_, delta) in events {
                live += delta;
                peak = peak.max(live);
            }
            LayerMemory {
                component,
                blocks: blocks.len(),
                total_bytes,
                persistent_bytes,
                peak_live_bytes: peak.max(0) as u64,
            }
        })
        .collect();
    report.sort_by_key(|l| std::cmp::Reverse(l.peak_live_bytes));
    report
}

/// Renders the top-`n` components as an aligned table.
#[must_use]
pub fn render_layer_report(report: &[LayerMemory], n: usize) -> String {
    use std::fmt::Write as _;
    let mib = |b: u64| b as f64 / (1u64 << 20) as f64;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<40} {:>7} {:>12} {:>14} {:>12}",
        "component", "blocks", "total MiB", "persistent MiB", "peak MiB"
    );
    for l in report.iter().take(n) {
        let _ = writeln!(
            out,
            "{:<40} {:>7} {:>12.1} {:>14.1} {:>12.1}",
            l.component,
            l.blocks,
            mib(l.total_bytes),
            mib(l.persistent_bytes),
            mib(l.peak_live_bytes)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::Analyzer;
    use xmem_models::ModelId;
    use xmem_optim::OptimizerKind;
    use xmem_runtime::{profile_on_cpu, TrainJobSpec};

    fn report_for(model: ModelId) -> Vec<LayerMemory> {
        let spec = TrainJobSpec::new(model, OptimizerKind::Adam, 8).with_iterations(2);
        let trace = profile_on_cpu(&spec);
        let analyzed = Analyzer::new().analyze(&trace).unwrap();
        layer_report(&analyzed, &Orchestrator::default())
    }

    #[test]
    fn transformer_blocks_appear_per_layer() {
        let report = report_for(ModelId::DistilGpt2);
        let block_components: Vec<&str> = report
            .iter()
            .map(|l| l.component.as_str())
            .filter(|c| c.starts_with("transformer.h."))
            .collect();
        assert!(
            block_components.len() >= 6,
            "expected all 6 decoder blocks, got {block_components:?}"
        );
    }

    #[test]
    fn peaks_are_bounded_by_totals() {
        for l in report_for(ModelId::MobileNetV3Small) {
            assert!(l.peak_live_bytes <= l.total_bytes, "{}", l.component);
            assert!(l.persistent_bytes <= l.total_bytes, "{}", l.component);
            assert!(l.blocks > 0);
        }
    }

    #[test]
    fn parameters_sit_in_the_global_component() {
        // Parameters materialize inside `model.to(device)`, before any
        // module forward window, so they aggregate under `<global>` — the
        // per-layer rows hold activations/gradients.
        let report = report_for(ModelId::DistilGpt2);
        let global = report
            .iter()
            .find(|l| l.component == "<global>")
            .expect("global bucket exists");
        let params = ModelId::DistilGpt2.build().param_bytes();
        assert!(
            global.persistent_bytes >= params,
            "global persistent {} must cover parameters {params}",
            global.persistent_bytes
        );
        // Decoder blocks carry meaningful activation peaks.
        for l in report
            .iter()
            .filter(|l| l.component.starts_with("transformer.h."))
        {
            assert!(
                l.peak_live_bytes > 1 << 20,
                "{}: peak {}",
                l.component,
                l.peak_live_bytes
            );
        }
    }

    #[test]
    fn rendering_lists_requested_rows() {
        let report = report_for(ModelId::MobileNetV3Small);
        let rendered = render_layer_report(&report, 5);
        assert_eq!(rendered.lines().count(), 1 + report.len().min(5));
        assert!(rendered.contains("component"));
    }
}
