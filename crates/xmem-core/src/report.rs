//! Human-readable estimate reports.

use crate::pipeline::Estimate;
use std::fmt::Write as _;

fn gib(bytes: u64) -> f64 {
    bytes as f64 / (1u64 << 30) as f64
}

/// Renders a multi-line report of an estimate — used by the examples and
/// the CLI-style tooling.
#[must_use]
pub fn render_report(job: &str, estimate: &Estimate) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "xMem estimate for {job}");
    let _ = writeln!(
        out,
        "  peak device memory : {:>8.3} GiB (job {:.3} GiB + framework {:.3} GiB)",
        gib(estimate.peak_bytes),
        gib(estimate.job_peak_bytes),
        gib(estimate.peak_bytes - estimate.job_peak_bytes),
    );
    let _ = writeln!(
        out,
        "  peak tensor memory : {:>8.3} GiB",
        gib(estimate.tensor_peak_bytes)
    );
    let _ = writeln!(
        out,
        "  OOM predicted      : {}",
        if estimate.oom_predicted { "YES" } else { "no" }
    );
    let _ = writeln!(out, "  memory blocks by category:");
    for (name, count, bytes) in &estimate.stats.categories {
        if *count > 0 {
            let _ = writeln!(
                out,
                "    {name:<16} {count:>7} blocks {:>10.3} GiB",
                gib(*bytes)
            );
        }
    }
    let _ = writeln!(
        out,
        "  orchestration: {} lifecycles adjusted, {} script blocks filtered",
        estimate.stats.adjusted_blocks, estimate.stats.filtered_blocks
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::AnalysisStats;

    #[test]
    fn report_mentions_key_numbers() {
        let est = Estimate {
            peak_bytes: 3 << 30,
            job_peak_bytes: (3 << 30) - (529 << 20),
            tensor_peak_bytes: 2 << 30,
            oom_predicted: false,
            curve: Vec::new(),
            stats: AnalysisStats {
                categories: vec![("Parameter".into(), 42, 1 << 30)],
                filtered_blocks: 3,
                adjusted_blocks: 7,
                unmatched_frees: 0,
            },
        };
        let r = render_report("demo", &est);
        assert!(r.contains("demo"));
        assert!(r.contains("3.000 GiB"));
        assert!(r.contains("Parameter"));
        assert!(r.contains("7 lifecycles adjusted"));
        assert!(r.contains("no"));
    }
}
