//! Parameterized replay: the incremental-sweep core.
//!
//! A batch-size sweep asks the same question B times over event streams
//! that differ only in the sizes of batch-scaled segments (activations,
//! gradients, batch data). [`ParamReplay`] factors that stream once into
//! a **batch-invariant structure** (event order, block identity,
//! alloc/free polarity) plus a **per-event affine size model**
//! `bytes(b) = base + slope·b`, fitted from three profiled anchor
//! batches and *proven* exact before use:
//!
//! - the orchestrated streams of all anchors must be structurally
//!   identical (same events over the same dense block ids, same
//!   filter/adjust/lifecycle counts, same per-category block counts);
//! - every per-event size and per-category byte total must fit the
//!   affine model from the endpoint anchors *exactly* (integral slope,
//!   non-negative base) and reproduce every interior anchor bit-for-bit.
//!
//! Any violation yields a [`ParamRejection`] and callers fall back to
//! the full per-batch pipeline, so the incremental path can only ever
//! be a pure speedup — never an approximation. Timestamps are copied
//! verbatim from the lowest anchor: under the eligibility gate
//! (`gc_threshold` off, no timeline) the simulated allocator reads the
//! clock for labelling only, so nominal timestamps replay
//! bit-identically (the same argument that underpins
//! [`derive_from_replay`](crate::Estimator::derive_from_replay)).
//!
//! [`EventBuffer`] is the structure-of-arrays materialization the
//! simulator consumes: dense block ids index a flat address table, so a
//! full replay walks four parallel vectors instead of chasing a
//! `HashMap` — the same buffer also backs ordinary (non-incremental)
//! replays via [`Simulator::replay_buffer`](crate::Simulator::replay_buffer).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::analyzer::AnalyzedTrace;
use crate::orchestrator::{OrchestratedSequence, Orchestrator};
use crate::pipeline::{analysis_stats, AnalysisStats};

/// Structure-of-arrays event stream, ready for simulator replay.
///
/// Block ids are **dense**: remapped to `0..num_blocks` by order of
/// first appearance, so the simulator can track live addresses in a
/// flat `Vec` instead of a hash map. All four columns have equal
/// length; event `i` is `(ts_us[i], block[i], bytes[i], is_alloc[i])`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventBuffer {
    /// Event timestamps (µs). Under the incremental gate these only
    /// label snapshots/timeline points and never affect placement.
    pub ts_us: Vec<u64>,
    /// Dense block id per event (`< num_blocks`).
    pub block: Vec<u32>,
    /// Raw (pre-rounding) byte size per event.
    pub bytes: Vec<u64>,
    /// `true` for an allocation, `false` for a free.
    pub is_alloc: Vec<bool>,
    /// Number of distinct blocks referenced by the stream.
    pub num_blocks: usize,
}

impl EventBuffer {
    /// Densifies an orchestrated sequence into columnar form.
    #[must_use]
    pub fn from_sequence(sequence: &OrchestratedSequence) -> Self {
        let n = sequence.events.len();
        let mut buffer = EventBuffer {
            ts_us: Vec::with_capacity(n),
            block: Vec::with_capacity(n),
            bytes: Vec::with_capacity(n),
            is_alloc: Vec::with_capacity(n),
            num_blocks: 0,
        };
        let mut dense: std::collections::HashMap<usize, u32> = std::collections::HashMap::new();
        for event in &sequence.events {
            let next = dense.len() as u32;
            let id = *dense.entry(event.block).or_insert(next);
            buffer.ts_us.push(event.ts_us);
            buffer.block.push(id);
            buffer.bytes.push(event.bytes);
            buffer.is_alloc.push(event.is_alloc);
        }
        buffer.num_blocks = dense.len();
        buffer
    }

    /// Number of events in the stream.
    #[must_use]
    pub fn len(&self) -> usize {
        self.block.len()
    }

    /// Whether the stream is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.block.is_empty()
    }
}

/// Why a parameterized-replay fit was refused (→ full replay fallback).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamRejection {
    /// Fewer than the three anchors needed to fit and validate.
    TooFewAnchors,
    /// Anchor batches were not strictly increasing.
    UnorderedAnchors,
    /// An anchor's orchestrated stream differs structurally from the
    /// others (event order, polarity, block identity, or counts).
    StructureMismatch {
        /// The offending anchor's batch size.
        batch: usize,
    },
    /// An event's size is not affine in the batch across all anchors.
    NonAffineSize {
        /// Index of the offending event in the orchestrated stream.
        event: usize,
    },
    /// A category's byte total is not affine in the batch.
    NonAffineCategory {
        /// The offending category name.
        category: String,
    },
}

impl fmt::Display for ParamRejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamRejection::TooFewAnchors => {
                write!(f, "parameterized replay needs at least three anchors")
            }
            ParamRejection::UnorderedAnchors => {
                write!(f, "anchor batches must be strictly increasing")
            }
            ParamRejection::StructureMismatch { batch } => {
                write!(f, "anchor batch {batch} has a different event structure")
            }
            ParamRejection::NonAffineSize { event } => {
                write!(f, "event {event} size is not affine in the batch")
            }
            ParamRejection::NonAffineCategory { category } => {
                write!(f, "category `{category}` bytes are not affine in the batch")
            }
        }
    }
}

impl std::error::Error for ParamRejection {}

/// One analysis category's fitted block count and affine byte model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct CategoryFit {
    name: String,
    count: usize,
    base_bytes: u64,
    slope_bytes: u64,
}

/// A proven-exact, batch-parameterized event stream.
///
/// Fitted once from three profiled anchors via [`ParamReplay::fit`] and
/// then [materialized](ParamReplay::materialize) at any batch in
/// [`ParamReplay::batch_range`] in O(events) — no profiling, no
/// orchestration. The fit is conservative: see the module docs for the
/// exactness proof obligations, and [`ParamRejection`] for the ways a
/// stream can fail them.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParamReplay {
    ts_us: Vec<u64>,
    block: Vec<u32>,
    is_alloc: Vec<bool>,
    base: Vec<u64>,
    slope: Vec<u64>,
    num_blocks: usize,
    batch_lo: usize,
    batch_hi: usize,
    filtered_blocks: usize,
    adjusted_blocks: usize,
    unmatched_frees: usize,
    categories: Vec<CategoryFit>,
}

/// Fits `(base, slope)` with `s(b) = base + slope·b` exact at both
/// endpoints, or `None` when no non-negative integral model exists.
fn affine(lo: (u64, u64), hi: (u64, u64)) -> Option<(u64, u64)> {
    let (b_lo, s_lo) = lo;
    let (b_hi, s_hi) = hi;
    let db = b_hi - b_lo;
    let ds = s_hi.checked_sub(s_lo)?;
    if ds % db != 0 {
        return None;
    }
    let slope = ds / db;
    let base = s_lo.checked_sub(slope.checked_mul(b_lo)?)?;
    Some((base, slope))
}

impl ParamReplay {
    /// Fits a parameterized replay from `anchors`: `(batch, analysis)`
    /// pairs, at least three, strictly increasing in batch. Each anchor
    /// is orchestrated with `orchestrator`; the endpoints pin the
    /// affine model and every interior anchor must reproduce exactly.
    pub fn fit(
        orchestrator: &Orchestrator,
        anchors: &[(usize, &AnalyzedTrace)],
    ) -> Result<ParamReplay, ParamRejection> {
        if anchors.len() < 3 {
            return Err(ParamRejection::TooFewAnchors);
        }
        if anchors.windows(2).any(|w| w[0].0 >= w[1].0) {
            return Err(ParamRejection::UnorderedAnchors);
        }

        // Orchestrate + densify every anchor, keeping its stats.
        let mut streams: Vec<(usize, EventBuffer, AnalysisStats)> = Vec::new();
        for &(batch, analyzed) in anchors {
            let sequence = orchestrator.orchestrate(analyzed);
            let stats = analysis_stats(analyzed, &sequence);
            streams.push((batch, EventBuffer::from_sequence(&sequence), stats));
        }

        // Structural identity across all anchors: dense densification
        // makes block identity comparable even though raw profiler ids
        // differ between batches.
        let (_, first, first_stats) = &streams[0];
        for (batch, buffer, stats) in &streams[1..] {
            let same = buffer.len() == first.len()
                && buffer.block == first.block
                && buffer.is_alloc == first.is_alloc
                && buffer.num_blocks == first.num_blocks
                && stats.filtered_blocks == first_stats.filtered_blocks
                && stats.adjusted_blocks == first_stats.adjusted_blocks
                && stats.unmatched_frees == first_stats.unmatched_frees
                && stats.categories.len() == first_stats.categories.len()
                && stats
                    .categories
                    .iter()
                    .zip(&first_stats.categories)
                    .all(|((name, count, _), (n0, c0, _))| name == n0 && count == c0);
            if !same {
                return Err(ParamRejection::StructureMismatch { batch: *batch });
            }
        }

        let (b_lo, lo, lo_stats) = &streams[0];
        let (b_hi, hi, _) = &streams[streams.len() - 1];

        // Per-event affine size model from the endpoints, validated
        // against every interior anchor.
        let mut base = Vec::with_capacity(lo.len());
        let mut slope = Vec::with_capacity(lo.len());
        for event in 0..lo.len() {
            let fitted = affine(
                (*b_lo as u64, lo.bytes[event]),
                (*b_hi as u64, hi.bytes[event]),
            )
            .ok_or(ParamRejection::NonAffineSize { event })?;
            for (batch, buffer, _) in &streams[1..streams.len() - 1] {
                if fitted.0 + fitted.1 * (*batch as u64) != buffer.bytes[event] {
                    return Err(ParamRejection::NonAffineSize { event });
                }
            }
            base.push(fitted.0);
            slope.push(fitted.1);
        }

        // Same model for per-category byte totals (reported in
        // `AnalysisStats`, so they must be exact too).
        let mut categories = Vec::with_capacity(lo_stats.categories.len());
        for (index, (name, count, lo_bytes)) in lo_stats.categories.iter().enumerate() {
            let hi_bytes = streams[streams.len() - 1].2.categories[index].2;
            let fitted =
                affine((*b_lo as u64, *lo_bytes), (*b_hi as u64, hi_bytes)).ok_or_else(|| {
                    ParamRejection::NonAffineCategory {
                        category: name.clone(),
                    }
                })?;
            for (batch, _, stats) in &streams[1..streams.len() - 1] {
                if fitted.0 + fitted.1 * (*batch as u64) != stats.categories[index].2 {
                    return Err(ParamRejection::NonAffineCategory {
                        category: name.clone(),
                    });
                }
            }
            categories.push(CategoryFit {
                name: name.clone(),
                count: *count,
                base_bytes: fitted.0,
                slope_bytes: fitted.1,
            });
        }

        Ok(ParamReplay {
            ts_us: lo.ts_us.clone(),
            block: lo.block.clone(),
            is_alloc: lo.is_alloc.clone(),
            base,
            slope,
            num_blocks: lo.num_blocks,
            batch_lo: *b_lo,
            batch_hi: *b_hi,
            filtered_blocks: lo_stats.filtered_blocks,
            adjusted_blocks: lo_stats.adjusted_blocks,
            unmatched_frees: lo_stats.unmatched_frees,
            categories,
        })
    }

    /// The inclusive batch range the fit is proven over.
    #[must_use]
    pub fn batch_range(&self) -> (usize, usize) {
        (self.batch_lo, self.batch_hi)
    }

    /// Whether `batch` falls inside the proven range.
    #[must_use]
    pub fn covers(&self, batch: usize) -> bool {
        (self.batch_lo..=self.batch_hi).contains(&batch)
    }

    /// Number of events in the parameterized stream.
    #[must_use]
    pub fn events(&self) -> usize {
        self.block.len()
    }

    /// Materializes the concrete event stream for `batch`.
    ///
    /// # Panics
    /// When `batch` is outside [`ParamReplay::batch_range`].
    #[must_use]
    pub fn materialize(&self, batch: usize) -> EventBuffer {
        assert!(
            self.covers(batch),
            "batch {batch} outside fitted range {:?}",
            self.batch_range()
        );
        let b = batch as u64;
        EventBuffer {
            ts_us: self.ts_us.clone(),
            block: self.block.clone(),
            bytes: self
                .base
                .iter()
                .zip(&self.slope)
                .map(|(&base, &slope)| base + slope * b)
                .collect(),
            is_alloc: self.is_alloc.clone(),
            num_blocks: self.num_blocks,
        }
    }

    /// The analysis-stage statistics for `batch`, reconstructed from
    /// the fitted per-category model (bit-identical to what the full
    /// pipeline reports, by fit validation).
    #[must_use]
    pub fn stats_for(&self, batch: usize) -> AnalysisStats {
        let b = batch as u64;
        AnalysisStats {
            categories: self
                .categories
                .iter()
                .map(|c| (c.name.clone(), c.count, c.base_bytes + c.slope_bytes * b))
                .collect(),
            filtered_blocks: self.filtered_blocks,
            adjusted_blocks: self.adjusted_blocks,
            unmatched_frees: self.unmatched_frees,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::Analyzer;
    use xmem_models::ModelId;
    use xmem_optim::OptimizerKind;
    use xmem_runtime::{profile_on_cpu, TrainJobSpec};

    fn analyzed(batch: usize) -> AnalyzedTrace {
        let spec = TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, batch)
            .with_iterations(2);
        let trace = profile_on_cpu(&spec);
        Analyzer::default().analyze(&trace).expect("analyze")
    }

    #[test]
    fn fit_materializes_anchor_batches_bit_identically() {
        let orchestrator = Orchestrator::default();
        let traces: Vec<(usize, AnalyzedTrace)> =
            [1, 4, 8].iter().map(|&b| (b, analyzed(b))).collect();
        let anchors: Vec<(usize, &AnalyzedTrace)> = traces.iter().map(|(b, t)| (*b, t)).collect();
        let param = ParamReplay::fit(&orchestrator, &anchors).expect("fit");
        assert_eq!(param.batch_range(), (1, 8));

        for (batch, trace) in &traces {
            let sequence = orchestrator.orchestrate(trace);
            let direct = EventBuffer::from_sequence(&sequence);
            let materialized = param.materialize(*batch);
            assert_eq!(materialized.bytes, direct.bytes, "batch {batch}");
            assert_eq!(materialized.block, direct.block);
            assert_eq!(materialized.is_alloc, direct.is_alloc);
            let stats = analysis_stats(trace, &sequence);
            assert_eq!(param.stats_for(*batch), stats, "stats at batch {batch}");
        }
    }

    #[test]
    fn interior_batches_match_a_fresh_profile() {
        let orchestrator = Orchestrator::default();
        let traces: Vec<(usize, AnalyzedTrace)> =
            [2, 5, 8].iter().map(|&b| (b, analyzed(b))).collect();
        let anchors: Vec<(usize, &AnalyzedTrace)> = traces.iter().map(|(b, t)| (*b, t)).collect();
        let param = ParamReplay::fit(&orchestrator, &anchors).expect("fit");

        // Batches 3..7 were never anchors: the affine model must still
        // reproduce the freshly profiled stream byte-for-byte.
        for batch in [3usize, 4, 6, 7] {
            let fresh = analyzed(batch);
            let sequence = orchestrator.orchestrate(&fresh);
            let direct = EventBuffer::from_sequence(&sequence);
            assert_eq!(
                param.materialize(batch).bytes,
                direct.bytes,
                "batch {batch}"
            );
            assert_eq!(
                param.stats_for(batch),
                analysis_stats(&fresh, &sequence),
                "stats at batch {batch}"
            );
        }
    }

    #[test]
    fn rejects_bad_anchor_sets() {
        let orchestrator = Orchestrator::default();
        let a1 = analyzed(1);
        let a4 = analyzed(4);
        assert_eq!(
            ParamReplay::fit(&orchestrator, &[(1, &a1), (4, &a4)]),
            Err(ParamRejection::TooFewAnchors)
        );
        assert_eq!(
            ParamReplay::fit(&orchestrator, &[(4, &a4), (1, &a1), (4, &a4)]),
            Err(ParamRejection::UnorderedAnchors)
        );
    }

    #[test]
    fn rejects_structurally_divergent_anchors() {
        // DistilGpt2 at batch 1 has a different op/block structure than
        // the CNN anchors: the fit must refuse, not approximate.
        let orchestrator = Orchestrator::default();
        let a1 = analyzed(1);
        let a4 = analyzed(4);
        let other = {
            let spec =
                TrainJobSpec::new(ModelId::DistilGpt2, OptimizerKind::AdamW, 8).with_iterations(2);
            Analyzer::default()
                .analyze(&profile_on_cpu(&spec))
                .expect("analyze")
        };
        assert_eq!(
            ParamReplay::fit(&orchestrator, &[(1, &a1), (4, &a4), (8, &other)]),
            Err(ParamRejection::StructureMismatch { batch: 8 })
        );
    }

    #[test]
    fn materialize_outside_range_panics() {
        let orchestrator = Orchestrator::default();
        let traces: Vec<(usize, AnalyzedTrace)> =
            [1, 2, 4].iter().map(|&b| (b, analyzed(b))).collect();
        let anchors: Vec<(usize, &AnalyzedTrace)> = traces.iter().map(|(b, t)| (*b, t)).collect();
        let param = ParamReplay::fit(&orchestrator, &anchors).expect("fit");
        assert!(param.covers(3));
        assert!(!param.covers(5));
        let result = std::panic::catch_unwind(|| param.materialize(5));
        assert!(result.is_err());
    }

    #[test]
    fn affine_fit_edge_cases() {
        assert_eq!(affine((1, 10), (5, 10)), Some((10, 0))); // constant
        assert_eq!(affine((1, 10), (5, 30)), Some((5, 5))); // slope 5
        assert_eq!(affine((1, 10), (5, 13)), None); // fractional slope
        assert_eq!(affine((1, 10), (5, 6)), None); // shrinking
        assert_eq!(affine((4, 2), (8, 6)), None); // negative base
    }
}
