//! The Analyzer (paper §3.2): lifecycle reconstruction + hierarchical
//! time-based attribution + block classification.

use crate::lifecycle::{reconstruct_lifecycles, LifecycleStats, MemoryBlock};
use crate::windows::WindowIndex;
use crate::EstimateError;
use serde::{Deserialize, Serialize};
use xmem_trace::Trace;

/// Semantic class of a memory block, inferred purely from trace structure
/// (annotation phases, operator kinds, lifetimes) — never from runtime
/// internals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BlockCategory {
    /// Model parameter or buffer, allocated while loading the model.
    Parameter,
    /// Input/target tensors allocated by the dataloader.
    BatchData,
    /// Forward-pass intermediate that outlives its operator.
    Activation,
    /// Parameter gradient written by `AccumulateGrad`.
    Gradient,
    /// Backward-pass intermediate (activation gradients and the like).
    BackwardTemp,
    /// Optimizer state allocated in `optimizer.step()` and never freed.
    OptimizerState,
    /// Transient scratch inside an `optimizer.step()` window.
    OptimizerScratch,
    /// Transient block living entirely inside one operator window.
    Workspace,
    /// Script-level block outside any operator context — filtered out
    /// before simulation (paper: "presumed less relevant for the target
    /// GPU").
    Script,
}

impl BlockCategory {
    /// Whether the Orchestrator forwards blocks of this category into the
    /// simulation.
    #[must_use]
    pub fn is_kept(self) -> bool {
        self != BlockCategory::Script
    }
}

/// A memory block enriched with attribution results.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnalyzedBlock {
    /// The underlying lifecycle entity.
    pub block: MemoryBlock,
    /// Inferred category.
    pub category: BlockCategory,
    /// Name of the operator the block was attributed to, if any.
    pub operator: Option<String>,
    /// Component (module path) enclosing the allocation, if any.
    pub component: Option<String>,
}

/// Analyzer output: the temporally ordered block sequence plus the window
/// index (which the Orchestrator reuses) and diagnostics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnalyzedTrace {
    /// Blocks in allocation order.
    pub blocks: Vec<AnalyzedBlock>,
    /// Execution windows of the trace.
    pub windows: WindowIndex,
    /// Lifecycle reconstruction diagnostics.
    pub lifecycle_stats: LifecycleStats,
}

impl AnalyzedTrace {
    /// Number of blocks per category (diagnostics / tests).
    #[must_use]
    pub fn count(&self, category: BlockCategory) -> usize {
        self.blocks
            .iter()
            .filter(|b| b.category == category)
            .count()
    }

    /// Total bytes per category.
    #[must_use]
    pub fn bytes(&self, category: BlockCategory) -> u64 {
        self.blocks
            .iter()
            .filter(|b| b.category == category)
            .map(|b| b.block.bytes)
            .sum()
    }

    /// Approximate resident size of this analysis in bytes (block structs,
    /// their attribution strings, and the window index). Bytes-budgeted
    /// caches use it to price retained analyses; it is a stable,
    /// monotone-in-size figure, not exact heap accounting.
    #[must_use]
    pub fn approx_bytes(&self) -> u64 {
        let blocks = std::mem::size_of::<AnalyzedBlock>() as u64 * self.blocks.len() as u64;
        let strings: u64 = self
            .blocks
            .iter()
            .map(|b| {
                b.operator.as_deref().map_or(0, str::len) as u64
                    + b.component.as_deref().map_or(0, str::len) as u64
            })
            .sum();
        blocks + strings + self.windows.approx_bytes()
    }
}

/// The Analyzer. Stateless; configuration selects the profiled device.
#[derive(Debug, Clone)]
pub struct Analyzer {
    device_id: i32,
}

impl Default for Analyzer {
    fn default() -> Self {
        Analyzer::new()
    }
}

impl Analyzer {
    /// Analyzer for CPU traces (device id -1), the xMem configuration.
    #[must_use]
    pub fn new() -> Self {
        Analyzer { device_id: -1 }
    }

    /// Analyzer for a different source device (extensibility hook).
    #[must_use]
    pub fn for_device(device_id: i32) -> Self {
        Analyzer { device_id }
    }

    /// Runs lifecycle reconstruction, attribution and classification.
    ///
    /// # Errors
    /// [`EstimateError::EmptyTrace`] when no memory instants exist for the
    /// device; [`EstimateError::MissingIterations`] when the trace has no
    /// `ProfilerStep` markers (phases cannot be delimited).
    pub fn analyze(&self, trace: &Trace) -> Result<AnalyzedTrace, EstimateError> {
        let (blocks, lifecycle_stats) = reconstruct_lifecycles(trace, self.device_id);
        if blocks.is_empty() {
            return Err(EstimateError::EmptyTrace);
        }
        let windows = WindowIndex::build(trace);
        if windows.annotations.iterations.is_empty() {
            return Err(EstimateError::MissingIterations);
        }
        let analyzed = blocks
            .into_iter()
            .map(|b| self.classify(b, &windows))
            .collect();
        Ok(AnalyzedTrace {
            blocks: analyzed,
            windows,
            lifecycle_stats,
        })
    }

    /// Attribution (paper's two rules, extended hierarchically) and
    /// classification of one block.
    fn classify(&self, block: MemoryBlock, windows: &WindowIndex) -> AnalyzedBlock {
        let ann = &windows.annotations;
        let alloc_ts = block.alloc_ts;
        let component = windows.component_at(alloc_ts).map(|c| c.name.clone());
        let op = windows.op_at(alloc_ts);
        let operator = op.map(|w| w.name.clone());

        // Phase-based classes take precedence: these are the blocks the
        // Orchestrator has dedicated lifecycle rules for (§3.3).
        if ann.in_model_load(alloc_ts) {
            return AnalyzedBlock {
                block,
                category: BlockCategory::Parameter,
                operator,
                component,
            };
        }
        if ann.in_dataload(alloc_ts) {
            return AnalyzedBlock {
                block,
                category: BlockCategory::BatchData,
                operator,
                component,
            };
        }
        if ann.in_optimizer_step(alloc_ts) {
            // Persistent blocks born in step() are optimizer state; blocks
            // freed again are scratch. The paper filters state candidates
            // by parameter-size match; persistence subsumes that here and
            // also covers factored states (Adafactor) whose sizes match no
            // parameter.
            let category = if block.is_persistent() {
                BlockCategory::OptimizerState
            } else {
                BlockCategory::OptimizerScratch
            };
            return AnalyzedBlock {
                block,
                category,
                operator,
                component,
            };
        }

        match op {
            Some(w) => {
                let freed_inside_op = block.free_ts.is_some_and(|f| w.start <= f && f <= w.end);
                if w.is_accumulate_grad {
                    return AnalyzedBlock {
                        block,
                        category: BlockCategory::Gradient,
                        operator,
                        component,
                    };
                }
                if freed_inside_op {
                    // Rule (i): lifespan strictly within the operator.
                    return AnalyzedBlock {
                        block,
                        category: BlockCategory::Workspace,
                        operator,
                        component,
                    };
                }
                if w.is_backward {
                    return AnalyzedBlock {
                        block,
                        category: BlockCategory::BackwardTemp,
                        operator,
                        component,
                    };
                }
                // Rule (ii) and the component-level extension: a forward
                // block outliving its operator is an activation; whether it
                // outlives the component only refines the same class.
                AnalyzedBlock {
                    block,
                    category: BlockCategory::Activation,
                    operator,
                    component,
                }
            }
            None => {
                // Outside any operator window: script-level. Blocks inside
                // a component but not an operator are still script-level by
                // the paper's operator-centric filter.
                AnalyzedBlock {
                    block,
                    category: BlockCategory::Script,
                    operator: None,
                    component,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmem_models::ModelId;
    use xmem_optim::OptimizerKind;
    use xmem_runtime::{profile_on_cpu, TrainJobSpec};

    fn analyzed(optimizer: OptimizerKind) -> AnalyzedTrace {
        let spec = TrainJobSpec::new(ModelId::MobileNetV3Small, optimizer, 4).with_iterations(2);
        let trace = profile_on_cpu(&spec);
        Analyzer::new().analyze(&trace).unwrap()
    }

    #[test]
    fn real_trace_yields_all_major_categories() {
        let a = analyzed(OptimizerKind::Adam);
        for cat in [
            BlockCategory::Parameter,
            BlockCategory::BatchData,
            BlockCategory::Activation,
            BlockCategory::Gradient,
            BlockCategory::OptimizerState,
            BlockCategory::Workspace,
        ] {
            assert!(a.count(cat) > 0, "missing category {cat:?}");
        }
    }

    #[test]
    fn parameter_bytes_match_model() {
        let a = analyzed(OptimizerKind::Sgd { momentum: false });
        let g = ModelId::MobileNetV3Small.build();
        assert_eq!(a.bytes(BlockCategory::Parameter), g.param_bytes());
    }

    #[test]
    fn adam_state_is_twice_trainable_params() {
        let a = analyzed(OptimizerKind::Adam);
        let g = ModelId::MobileNetV3Small.build();
        let trainable: u64 = g
            .params()
            .iter()
            .filter(|p| p.trainable)
            .map(|p| p.spec.size_bytes() as u64)
            .sum();
        assert_eq!(a.bytes(BlockCategory::OptimizerState), 2 * trainable);
    }

    #[test]
    fn plain_sgd_has_no_state() {
        let a = analyzed(OptimizerKind::Sgd { momentum: false });
        assert_eq!(a.count(BlockCategory::OptimizerState), 0);
        assert_eq!(a.count(BlockCategory::OptimizerScratch), 0);
    }

    #[test]
    fn gradients_match_trainable_params_per_iteration() {
        let a = analyzed(OptimizerKind::Adam);
        let g = ModelId::MobileNetV3Small.build();
        let trainable = g.params().iter().filter(|p| p.trainable).count();
        // Gradients materialize once per iteration (freed by zero_grad).
        // 2 iterations profiled, POS0 placement: iteration 1 grads freed at
        // iteration 2's zero_grad; iteration 2 grads persist.
        assert_eq!(a.count(BlockCategory::Gradient), 2 * trainable);
    }

    #[test]
    fn empty_trace_is_rejected() {
        let t = Trace::new("empty");
        assert!(matches!(
            Analyzer::new().analyze(&t),
            Err(EstimateError::EmptyTrace)
        ));
    }

    #[test]
    fn missing_iterations_is_rejected() {
        let mut t = Trace::new("no-steps");
        t.push(xmem_trace::TraceEvent::mem_alloc(0, 0xa, 64, -1));
        assert!(matches!(
            Analyzer::new().analyze(&t),
            Err(EstimateError::MissingIterations)
        ));
    }
}
