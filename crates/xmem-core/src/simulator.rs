//! The Memory Simulator (paper §3.4): replays the orchestrated sequence
//! through the two-level allocator simulation and reports the peak
//! *segment* memory — the quantity NVML observes and schedulers must
//! budget for.

use crate::orchestrator::OrchestratedSequence;
use crate::param::EventBuffer;
use xmem_alloc::{
    AllocatorConfig, AllocatorSnapshot, CachingAllocator, DeviceAllocator, MemoryCounters,
    OomError, TimelinePoint,
};

/// Outcome of a replay.
#[derive(Debug, Clone)]
pub struct SimulationResult {
    /// Peak reserved (segment) bytes of the job, excluding framework
    /// overhead.
    pub peak_reserved: u64,
    /// Peak allocated (tensor) bytes of the job.
    pub peak_allocated: u64,
    /// Whether the replay hit the two-level OOM condition.
    pub oom: bool,
    /// OOM details when `oom` is set.
    pub oom_detail: Option<OomError>,
    /// Allocator counters at the end of the replay.
    pub counters: MemoryCounters,
    /// Usage curve (`ts`, tensor bytes, segment bytes) when recording was
    /// requested.
    pub timeline: Vec<TimelinePoint>,
    /// Final allocator state when recording was requested — diffable
    /// against a real run's snapshot (the paper's verification hook).
    pub snapshot: Option<AllocatorSnapshot>,
}

/// The Simulator: a configured two-level allocator replay.
#[derive(Debug, Clone)]
pub struct Simulator {
    /// Framework-allocator behaviour (PyTorch defaults unless ablated).
    pub allocator: AllocatorConfig,
    /// Device capacity available to framework + job (`M^max - M^init`),
    /// or `None` for an unbounded replay (pure peak estimation).
    pub capacity: Option<u64>,
    /// Bytes reserved on the device before the job starts (`M^fm`).
    pub framework_bytes: u64,
    /// Record the usage curve (costs memory on long traces).
    pub record_timeline: bool,
}

impl Simulator {
    /// Simulator against a bounded device.
    #[must_use]
    pub fn new(capacity: u64, framework_bytes: u64) -> Self {
        Simulator {
            allocator: AllocatorConfig::pytorch_defaults(),
            capacity: Some(capacity),
            framework_bytes,
            record_timeline: false,
        }
    }

    /// Simulator on an unbounded device (peak estimation only).
    #[must_use]
    pub fn unbounded() -> Self {
        Simulator {
            allocator: AllocatorConfig::pytorch_defaults(),
            capacity: None,
            framework_bytes: 0,
            record_timeline: false,
        }
    }

    /// Enables usage-curve recording.
    #[must_use]
    pub fn with_timeline(mut self) -> Self {
        self.record_timeline = true;
        self
    }

    /// Replays the sequence chronologically: each allocation event secures
    /// memory through the simulated two-level allocator, each free marks
    /// the block reusable (possibly coalescing). Replay stops at the first
    /// OOM, exactly like the job it models.
    ///
    /// Internally the sequence is densified into an [`EventBuffer`] and
    /// fed through [`Simulator::replay_buffer`], so every full replay
    /// takes the same structure-of-arrays path as the incremental sweep.
    #[must_use]
    pub fn replay(&self, sequence: &OrchestratedSequence) -> SimulationResult {
        self.replay_buffer(&EventBuffer::from_sequence(sequence))
    }

    /// Replays a densified event buffer. Identical semantics to
    /// [`Simulator::replay`]; the dense block ids let live addresses sit
    /// in a flat table instead of a hash map.
    #[must_use]
    pub fn replay_buffer(&self, buffer: &EventBuffer) -> SimulationResult {
        let device = match self.capacity {
            Some(cap) => {
                DeviceAllocator::new(cap, DeviceAllocator::DEFAULT_PAGE, self.framework_bytes)
            }
            None => DeviceAllocator::unlimited(),
        };
        let mut alloc = CachingAllocator::new(self.allocator.clone(), device);
        alloc.record_timeline(self.record_timeline);

        let mut addr_of: Vec<Option<u64>> = vec![None; buffer.num_blocks];
        let mut oom_detail = None;
        for event in 0..buffer.len() {
            alloc.advance_clock(buffer.ts_us[event]);
            let block = buffer.block[event] as usize;
            if buffer.is_alloc[event] {
                match alloc.alloc(buffer.bytes[event] as usize) {
                    Ok(addr) => addr_of[block] = Some(addr),
                    Err(err) => {
                        oom_detail = Some(err);
                        break;
                    }
                }
            } else if let Some(addr) = addr_of[block].take() {
                alloc.free(addr);
            }
        }
        let counters = *alloc.counters();
        SimulationResult {
            peak_reserved: counters.peak_reserved,
            peak_allocated: counters.peak_allocated,
            oom: oom_detail.is_some(),
            oom_detail,
            counters,
            timeline: alloc.timeline().to_vec(),
            snapshot: self.record_timeline.then(|| alloc.snapshot()),
        }
    }

    /// Verifies a replay against the final allocator snapshot of a real
    /// run (the paper's §3.2/§3.4 snapshot check): returns the structural
    /// diff between simulated and observed end states.
    #[must_use]
    pub fn verify_against(
        &self,
        sequence: &OrchestratedSequence,
        observed: &AllocatorSnapshot,
    ) -> xmem_alloc::SnapshotDiff {
        let mut sim = self.clone();
        sim.record_timeline = true;
        let result = sim.replay(sequence);
        let simulated = result.snapshot.expect("recording enabled");
        simulated.diff(observed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orchestrator::OrchestratedEvent;

    fn seq(events: Vec<(u64, usize, u64, bool)>) -> OrchestratedSequence {
        OrchestratedSequence {
            events: events
                .into_iter()
                .map(|(ts_us, block, bytes, is_alloc)| OrchestratedEvent {
                    ts_us,
                    block,
                    bytes,
                    is_alloc,
                })
                .collect(),
            filtered_blocks: 0,
            adjusted_blocks: 0,
        }
    }

    const MIB: u64 = 1 << 20;

    #[test]
    fn replay_tracks_segment_peak_not_tensor_sum() {
        // Two 600 KiB tensors fit one 2 MiB small segment... they are
        // large-pool (>1 MiB? no, 600 KiB is small pool). Both live at
        // once: reserved = one small segment, allocated = 1.2 MiB.
        let s = seq(vec![
            (0, 0, 600 * 1024, true),
            (10, 1, 600 * 1024, true),
            (20, 0, 600 * 1024, false),
            (30, 1, 600 * 1024, false),
        ]);
        let r = Simulator::unbounded().replay(&s);
        assert!(!r.oom);
        assert_eq!(r.peak_reserved, 2 * MIB);
        assert_eq!(r.peak_allocated, 1200 * 1024);
    }

    #[test]
    fn sequence_order_changes_peak() {
        // The paper's Fig. 3 phenomenon: freeing before allocating the next
        // large tensor lowers the segment peak.
        let hold = seq(vec![
            (0, 0, 96 * MIB, true),
            (10, 1, 96 * MIB, true), // second while first still live
            (20, 0, 96 * MIB, false),
            (30, 1, 96 * MIB, false),
        ]);
        let release_first = seq(vec![
            (0, 0, 96 * MIB, true),
            (10, 0, 96 * MIB, false),
            (20, 1, 96 * MIB, true),
            (30, 1, 96 * MIB, false),
        ]);
        let sim = Simulator::unbounded();
        let peak_hold = sim.replay(&hold).peak_reserved;
        let peak_release = sim.replay(&release_first).peak_reserved;
        assert!(peak_hold > peak_release);
        assert_eq!(peak_release, 96 * MIB);
        assert_eq!(peak_hold, 192 * MIB);
    }

    #[test]
    fn bounded_replay_ooms_and_stops() {
        let s = seq(vec![
            (0, 0, 64 * MIB, true),
            (10, 1, 64 * MIB, true),
            (20, 2, 64 * MIB, true),
        ]);
        let r = Simulator::new(128 * MIB, 16 * MIB).replay(&s);
        assert!(r.oom);
        let detail = r.oom_detail.unwrap();
        assert!(detail.reclaim_attempted);
    }

    #[test]
    fn timeline_is_recorded_on_request() {
        let s = seq(vec![(5, 0, MIB, true), (1500, 0, MIB, false)]);
        let r = Simulator::unbounded().with_timeline().replay(&s);
        assert_eq!(r.timeline.len(), 2);
        assert_eq!(r.timeline[0].ts_us, 5);
        assert_eq!(r.timeline[1].reserved, 2 * MIB, "segment stays cached");
    }

    #[test]
    fn snapshot_is_captured_when_recording() {
        let s = seq(vec![(0, 0, MIB, true)]);
        let r = Simulator::unbounded().with_timeline().replay(&s);
        let snap = r.snapshot.expect("recording requested");
        assert_eq!(snap.reserved_bytes(), 2 * MIB);
        let none = Simulator::unbounded().replay(&s);
        assert!(none.snapshot.is_none());
    }

    #[test]
    fn verification_against_identical_replay_is_exact() {
        let s = seq(vec![
            (0, 0, 4 * MIB, true),
            (10, 1, MIB, true),
            (20, 0, 4 * MIB, false),
        ]);
        let reference = Simulator::unbounded().with_timeline().replay(&s);
        let diff =
            Simulator::unbounded().verify_against(&s, &reference.snapshot.expect("recorded"));
        assert_eq!(diff.reserved_delta, 0);
        assert_eq!(diff.active_delta, 0);
        assert_eq!(diff.segment_count_delta, 0);
        assert!(diff.within(0));
    }

    #[test]
    fn frees_of_unknown_blocks_are_ignored() {
        // Robustness: a free for a block the replay never allocated (e.g.
        // dropped by an OOM cut) must not panic.
        let s = seq(vec![(0, 7, MIB, false)]);
        let r = Simulator::unbounded().replay(&s);
        assert!(!r.oom);
        assert_eq!(r.peak_reserved, 0);
    }
}
