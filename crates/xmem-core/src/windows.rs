//! Execution-window indices (paper §3.2, Analyzer step 2).
//!
//! Rebuilds, from span events, the structures the attribution pass queries:
//! operator windows (`cpu_op`), component windows (`python_function`) and
//! the training-phase annotation windows (`user_annotation`).

use serde::{Deserialize, Serialize};
use xmem_trace::{names, EventCategory, Trace};

/// One operator execution window.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpWindow {
    /// Kernel name (`aten::…` or autograd node).
    pub name: String,
    /// Start timestamp (µs).
    pub start: u64,
    /// End timestamp (exclusive).
    pub end: u64,
    /// Forward/backward linking sequence number, when recorded.
    pub seq: Option<u64>,
    /// Whether this is a backward-engine node.
    pub is_backward: bool,
    /// Whether this is a gradient-accumulation node.
    pub is_accumulate_grad: bool,
}

/// A component (module) window derived from `python_function` spans.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComponentWindow {
    /// Module path (e.g. `transformer.h.0`).
    pub name: String,
    /// Start timestamp.
    pub start: u64,
    /// End timestamp (exclusive).
    pub end: u64,
}

/// Training-phase windows from `user_annotation` events.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnnotationIndex {
    /// `(iteration, start, end)` of each `ProfilerStep#k`.
    pub iterations: Vec<(u32, u64, u64)>,
    /// `optimizer.zero_grad()` windows.
    pub zero_grads: Vec<(u64, u64)>,
    /// `optimizer.step()` windows.
    pub optimizer_steps: Vec<(u64, u64)>,
    /// Dataloader fetch windows.
    pub dataloads: Vec<(u64, u64)>,
    /// `loss.backward()` windows.
    pub backwards: Vec<(u64, u64)>,
    /// Model-loading window (`model.to(device)`).
    pub model_load: Option<(u64, u64)>,
}

impl AnnotationIndex {
    /// Whether `ts` falls within any of the given windows.
    fn contains(windows: &[(u64, u64)], ts: u64) -> bool {
        windows.iter().any(|&(s, e)| s <= ts && ts < e)
    }

    /// Whether `ts` is inside a dataloader fetch.
    #[must_use]
    pub fn in_dataload(&self, ts: u64) -> bool {
        Self::contains(&self.dataloads, ts)
    }

    /// Whether `ts` is inside an `optimizer.step()` window.
    #[must_use]
    pub fn in_optimizer_step(&self, ts: u64) -> bool {
        Self::contains(&self.optimizer_steps, ts)
    }

    /// Whether `ts` is inside a `loss.backward()` window.
    #[must_use]
    pub fn in_backward(&self, ts: u64) -> bool {
        Self::contains(&self.backwards, ts)
    }

    /// Whether `ts` is inside the model-loading window.
    #[must_use]
    pub fn in_model_load(&self, ts: u64) -> bool {
        self.model_load.is_some_and(|(s, e)| s <= ts && ts < e)
    }

    /// End of the iteration containing `ts`, if any.
    #[must_use]
    pub fn iteration_end(&self, ts: u64) -> Option<u64> {
        self.iterations
            .iter()
            .find(|&&(_, s, e)| s <= ts && ts < e)
            .map(|&(_, _, e)| e)
    }

    /// End of the first `zero_grad` window starting at or after `ts`.
    #[must_use]
    pub fn next_zero_grad_end(&self, ts: u64) -> Option<u64> {
        self.zero_grads
            .iter()
            .filter(|&&(s, _)| s >= ts)
            .map(|&(_, e)| e)
            .min()
    }
}

/// The full window index of a trace.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowIndex {
    ops: Vec<OpWindow>,
    components: Vec<ComponentWindow>,
    /// Annotation windows.
    pub annotations: AnnotationIndex,
}

impl WindowIndex {
    /// Approximate resident size of the index in bytes (window structs
    /// plus their heap-owned names) — the window share of an analyzed
    /// trace's cache cost.
    #[must_use]
    pub fn approx_bytes(&self) -> u64 {
        let ops = std::mem::size_of::<OpWindow>() as u64 * self.ops.len() as u64
            + self.ops.iter().map(|w| w.name.len() as u64).sum::<u64>();
        let components = std::mem::size_of::<ComponentWindow>() as u64
            * self.components.len() as u64
            + self
                .components
                .iter()
                .map(|w| w.name.len() as u64)
                .sum::<u64>();
        let annotations = std::mem::size_of::<AnnotationIndex>() as u64
            + 24 * (self.annotations.iterations.len()
                + self.annotations.zero_grads.len()
                + self.annotations.optimizer_steps.len()
                + self.annotations.dataloads.len()
                + self.annotations.backwards.len()) as u64;
        ops + components + annotations
    }

    /// Builds the index from a trace.
    #[must_use]
    pub fn build(trace: &Trace) -> Self {
        let mut ops: Vec<OpWindow> = trace
            .of_category(EventCategory::CpuOp)
            .map(|e| OpWindow {
                name: e.name.clone(),
                start: e.ts_us,
                end: e.end_us().max(e.ts_us + 1),
                seq: e.args.seq,
                is_backward: names::is_backward_op(&e.name),
                is_accumulate_grad: e.name == names::ACCUMULATE_GRAD,
            })
            .collect();
        ops.sort_by_key(|w| w.start);

        let mut components: Vec<ComponentWindow> = trace
            .of_category(EventCategory::PythonFunction)
            .filter_map(|e| {
                names::parse_nn_module(&e.name).map(|path| ComponentWindow {
                    name: path.to_string(),
                    start: e.ts_us,
                    end: e.end_us().max(e.ts_us + 1),
                })
            })
            .collect();
        components.sort_by_key(|w| w.start);

        let mut annotations = AnnotationIndex::default();
        for e in trace.of_category(EventCategory::UserAnnotation) {
            let span = (e.ts_us, e.end_us().max(e.ts_us + 1));
            if let Some(k) = names::parse_profiler_step(&e.name) {
                annotations.iterations.push((k, span.0, span.1));
            } else if names::is_optimizer_zero_grad(&e.name) {
                annotations.zero_grads.push(span);
            } else if names::is_optimizer_step(&e.name) {
                annotations.optimizer_steps.push(span);
            } else if e.name == names::DATALOADER_NEXT {
                annotations.dataloads.push(span);
            } else if e.name == names::BACKWARD_CALL {
                annotations.backwards.push(span);
            } else if e.name == names::MODEL_TO_DEVICE {
                annotations.model_load = Some(span);
            }
        }
        annotations.iterations.sort_by_key(|w| w.1);

        WindowIndex {
            ops,
            components,
            annotations,
        }
    }

    /// All operator windows (sorted by start).
    #[must_use]
    pub fn ops(&self) -> &[OpWindow] {
        &self.ops
    }

    /// The operator window containing `ts`. Operator windows do not nest
    /// (kernels execute sequentially on one thread), so the rightmost
    /// window starting at or before `ts` decides.
    #[must_use]
    pub fn op_at(&self, ts: u64) -> Option<&OpWindow> {
        let idx = self.ops.partition_point(|w| w.start <= ts);
        self.ops[..idx].iter().rev().find(|w| ts < w.end)
    }

    /// The innermost component window containing `ts` (module spans nest:
    /// the whole-model span contains per-component spans; the one with the
    /// latest start is innermost).
    #[must_use]
    pub fn component_at(&self, ts: u64) -> Option<&ComponentWindow> {
        let idx = self.components.partition_point(|w| w.start <= ts);
        self.components[..idx].iter().rev().find(|w| ts < w.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmem_trace::TraceEvent;

    fn demo_trace() -> Trace {
        let mut t = Trace::new("t");
        t.push(TraceEvent::span(
            EventCategory::UserAnnotation,
            names::profiler_step(1),
            0,
            100,
        ));
        t.push(TraceEvent::span(
            EventCategory::PythonFunction,
            names::nn_module("model"),
            5,
            60,
        ));
        t.push(TraceEvent::span(
            EventCategory::PythonFunction,
            names::nn_module("model.layer1"),
            10,
            20,
        ));
        t.push(TraceEvent::span_with_seq(
            EventCategory::CpuOp,
            "aten::linear",
            12,
            6,
            7,
        ));
        t.push(TraceEvent::span(
            EventCategory::UserAnnotation,
            names::optimizer_zero_grad("AdamW"),
            70,
            5,
        ));
        t.push(TraceEvent::span(
            EventCategory::UserAnnotation,
            names::optimizer_step("AdamW"),
            80,
            10,
        ));
        t.sort_by_time();
        t
    }

    #[test]
    fn op_lookup_finds_containing_window() {
        let idx = WindowIndex::build(&demo_trace());
        let w = idx.op_at(14).expect("inside aten::linear");
        assert_eq!(w.name, "aten::linear");
        assert_eq!(w.seq, Some(7));
        assert!(idx.op_at(40).is_none());
        assert!(idx.op_at(11).is_none());
        assert!(idx.op_at(18).is_none(), "end is exclusive");
    }

    #[test]
    fn component_lookup_prefers_innermost() {
        let idx = WindowIndex::build(&demo_trace());
        assert_eq!(idx.component_at(15).unwrap().name, "model.layer1");
        assert_eq!(idx.component_at(40).unwrap().name, "model");
        assert!(idx.component_at(90).is_none());
    }

    #[test]
    fn annotations_are_indexed() {
        let idx = WindowIndex::build(&demo_trace());
        assert_eq!(idx.annotations.iterations, vec![(1, 0, 100)]);
        assert!(idx.annotations.in_optimizer_step(85));
        assert!(!idx.annotations.in_optimizer_step(95));
        assert_eq!(idx.annotations.next_zero_grad_end(0), Some(75));
        assert_eq!(idx.annotations.next_zero_grad_end(71), None);
        assert_eq!(idx.annotations.iteration_end(50), Some(100));
        assert_eq!(idx.annotations.iteration_end(150), None);
    }

    #[test]
    fn backward_ops_are_flagged() {
        let mut t = Trace::new("t");
        t.push(TraceEvent::span(
            EventCategory::CpuOp,
            names::autograd_node("LinearBackward0"),
            0,
            4,
        ));
        t.push(TraceEvent::span(
            EventCategory::CpuOp,
            names::ACCUMULATE_GRAD,
            5,
            2,
        ));
        let idx = WindowIndex::build(&t);
        assert!(idx.ops()[0].is_backward);
        assert!(idx.ops()[1].is_accumulate_grad);
        assert!(idx.ops()[1].is_backward);
    }
}
