//! The Memory Orchestrator (paper §3.3): re-times CPU-derived block
//! lifecycles to match the lifecycle the same tensors would have on the
//! target GPU, then emits the orchestrated event sequence the Simulator
//! replays.
//!
//! Rules (numbered as in the paper):
//! 1. **Model parameters** — blocks from model loading become persistent.
//! 2. **Batch data** — lifecycles are limited to their training iteration:
//!    frees are clamped to the iteration boundary.
//! 3. **Activations** — CPU-derived lifecycles are kept as the best
//!    available approximation of GPU lifecycles.
//! 4. **Gradients** — deallocation snaps to the end of the next
//!    `optimizer.zero_grad()` window (set_to_none semantics); gradients
//!    with no later `zero_grad` become persistent.
//! 5. **Optimizer state** — persistent from its first allocation
//!    (allocated in iteration 1; iteration 2's peak sits on top of it).
//!
//! Script-level blocks are dropped (the Analyzer's operator-centric
//! filter).

use crate::analyzer::{AnalyzedTrace, BlockCategory};
use serde::{Deserialize, Serialize};

/// One orchestrated memory event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OrchestratedEvent {
    /// Event timestamp (µs).
    pub ts_us: u64,
    /// Block identifier (stable across alloc/free).
    pub block: usize,
    /// Size in bytes.
    pub bytes: u64,
    /// `true` = allocation, `false` = free.
    pub is_alloc: bool,
}

/// The orchestrated sequence: time-ordered events ready for replay.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OrchestratedSequence {
    /// Events in replay order.
    pub events: Vec<OrchestratedEvent>,
    /// Number of blocks dropped by the script-level filter.
    pub filtered_blocks: usize,
    /// Number of blocks whose lifecycle was adjusted by rules 1–5.
    pub adjusted_blocks: usize,
}

impl OrchestratedSequence {
    /// Number of alloc events (== number of kept blocks).
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.events.iter().filter(|e| e.is_alloc).count()
    }
}

/// Configuration of the Orchestrator (ablation switches).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Orchestrator {
    /// Apply lifecycle rules 1–5; when `false`, raw CPU lifecycles are
    /// replayed unchanged (ablation).
    pub retime: bool,
    /// Drop script-level blocks; when `false`, everything is replayed.
    pub filter_script: bool,
}

impl Default for Orchestrator {
    fn default() -> Self {
        Orchestrator {
            retime: true,
            filter_script: true,
        }
    }
}

impl Orchestrator {
    /// Produces the orchestrated sequence from an analyzed trace.
    #[must_use]
    pub fn orchestrate(&self, analyzed: &AnalyzedTrace) -> OrchestratedSequence {
        let ann = &analyzed.windows.annotations;
        let horizon = analyzed
            .blocks
            .iter()
            .flat_map(|b| [Some(b.block.alloc_ts), b.block.free_ts])
            .flatten()
            .max()
            .unwrap_or(0)
            + 1;

        let mut events: Vec<(u64, u64, OrchestratedEvent)> = Vec::new();
        let mut filtered = 0usize;
        let mut adjusted = 0usize;

        for ab in &analyzed.blocks {
            if self.filter_script && !ab.category.is_kept() {
                filtered += 1;
                continue;
            }
            let b = &ab.block;
            let mut free_ts = b.free_ts;
            if self.retime {
                let new_free = match ab.category {
                    // Rule 1 & 5: persistent for the analysis horizon.
                    BlockCategory::Parameter | BlockCategory::OptimizerState => None,
                    // Rule 2: die at the iteration boundary at the latest.
                    BlockCategory::BatchData => {
                        let boundary = ann.iteration_end(b.alloc_ts);
                        match (free_ts, boundary) {
                            (Some(f), Some(e)) => Some(f.min(e)),
                            (None, Some(e)) => Some(e),
                            (f, None) => f,
                        }
                    }
                    // Rule 4: snap to the next zero_grad end.
                    BlockCategory::Gradient => ann.next_zero_grad_end(b.alloc_ts),
                    // Rule 3 and everything transient: keep CPU timing.
                    _ => free_ts,
                };
                if new_free != free_ts {
                    adjusted += 1;
                }
                free_ts = new_free;
            }

            // Order keys: primary = timestamp; secondary = block id so that
            // same-instant events replay in original allocation order.
            events.push((
                b.alloc_ts,
                b.id as u64 * 2,
                OrchestratedEvent {
                    ts_us: b.alloc_ts,
                    block: b.id,
                    bytes: b.bytes,
                    is_alloc: true,
                },
            ));
            let f = free_ts.unwrap_or(horizon);
            // Frees at the same instant as allocs replay after them
            // (matches trace emission order: a block is never freed before
            // a same-tick allocation that preceded it in the stream).
            events.push((
                f,
                b.id as u64 * 2 + 1,
                OrchestratedEvent {
                    ts_us: f,
                    block: b.id,
                    bytes: b.bytes,
                    is_alloc: false,
                },
            ));
        }

        events.sort_by_key(|&(ts, order, _)| (ts, order));
        OrchestratedSequence {
            events: events.into_iter().map(|(_, _, e)| e).collect(),
            filtered_blocks: filtered,
            adjusted_blocks: adjusted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::Analyzer;
    use std::collections::HashSet;
    use xmem_models::ModelId;
    use xmem_optim::OptimizerKind;
    use xmem_runtime::{profile_on_cpu, TrainJobSpec};

    fn sequence(optimizer: OptimizerKind) -> (AnalyzedTrace, OrchestratedSequence) {
        let spec = TrainJobSpec::new(ModelId::MobileNetV3Small, optimizer, 4).with_iterations(3);
        let trace = profile_on_cpu(&spec);
        let analyzed = Analyzer::new().analyze(&trace).unwrap();
        let seq = Orchestrator::default().orchestrate(&analyzed);
        (analyzed, seq)
    }

    #[test]
    fn every_alloc_has_exactly_one_free() {
        let (_, seq) = sequence(OptimizerKind::Adam);
        let mut live: HashSet<usize> = HashSet::new();
        for e in &seq.events {
            if e.is_alloc {
                assert!(live.insert(e.block), "double alloc of block {}", e.block);
            } else {
                assert!(live.remove(&e.block), "free before alloc of {}", e.block);
            }
        }
        assert!(live.is_empty(), "all blocks freed by the horizon");
    }

    #[test]
    fn events_are_time_ordered() {
        let (_, seq) = sequence(OptimizerKind::Adam);
        for pair in seq.events.windows(2) {
            assert!(pair[0].ts_us <= pair[1].ts_us);
        }
    }

    #[test]
    fn frees_never_precede_their_alloc() {
        let (_, seq) = sequence(OptimizerKind::AdamW);
        use std::collections::HashMap;
        let mut alloc_ts: HashMap<usize, u64> = HashMap::new();
        for e in &seq.events {
            if e.is_alloc {
                alloc_ts.insert(e.block, e.ts_us);
            } else {
                assert!(e.ts_us >= alloc_ts[&e.block]);
            }
        }
    }

    #[test]
    fn retime_changes_gradient_lifecycles() {
        let (analyzed, _) = sequence(OptimizerKind::Adam);
        let raw = Orchestrator {
            retime: false,
            filter_script: true,
        }
        .orchestrate(&analyzed);
        let retimed = Orchestrator::default().orchestrate(&analyzed);
        assert_eq!(raw.num_blocks(), retimed.num_blocks());
        assert!(retimed.adjusted_blocks > 0, "some lifecycles must move");
        assert_ne!(raw.events, retimed.events);
    }

    #[test]
    fn orchestrated_peak_live_bytes_is_sane() {
        // Live-byte peak of the orchestrated sequence must at least cover
        // parameters + optimizer state (they are persistent).
        let (analyzed, seq) = sequence(OptimizerKind::Adam);
        let persistent = analyzed.bytes(crate::BlockCategory::Parameter)
            + analyzed.bytes(crate::BlockCategory::OptimizerState);
        let mut live = 0u64;
        let mut peak = 0u64;
        for e in &seq.events {
            if e.is_alloc {
                live += e.bytes;
                peak = peak.max(live);
            } else {
                live -= e.bytes;
            }
        }
        assert!(peak >= persistent);
    }
}
