//! The concurrent `EstimationService` is an exact drop-in for the
//! sequential `Estimator`: same inputs, bit-identical estimates — from
//! cold caches, warm caches, and under 8-way concurrent load.

use std::sync::Arc;
use xmem::prelude::*;

const THREADS: usize = 8;

fn specs_under_test() -> Vec<TrainJobSpec> {
    vec![
        // CNN.
        TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 8).with_iterations(2),
        // Transformer.
        TrainJobSpec::new(ModelId::DistilGpt2, OptimizerKind::AdamW, 4).with_iterations(2),
    ]
}

fn sequential_estimates(specs: &[TrainJobSpec], device: GpuDevice) -> Vec<Estimate> {
    let estimator = Estimator::new(EstimatorConfig::for_device(device));
    specs
        .iter()
        .map(|s| estimator.estimate_job(s).expect("sequential estimate"))
        .collect()
}

#[test]
fn concurrent_calls_match_the_sequential_estimator_bit_for_bit() {
    let device = GpuDevice::rtx3060();
    let specs = specs_under_test();
    let expected = sequential_estimates(&specs, device);

    let service = Arc::new(EstimationService::new(ServiceConfig::for_device(device)));
    let results: Vec<Vec<Estimate>> = std::thread::scope(|scope| {
        (0..THREADS)
            .map(|worker| {
                let service = Arc::clone(&service);
                let specs = specs.clone();
                scope.spawn(move || {
                    // Interleave spec order across workers to mix cold and
                    // warm lookups.
                    let mut mine: Vec<(usize, Estimate)> = specs
                        .iter()
                        .enumerate()
                        .cycle()
                        .skip(worker % specs.len())
                        .take(specs.len())
                        .map(|(i, s)| (i, service.estimate(s).expect("service estimate")))
                        .collect();
                    mine.sort_by_key(|&(i, _)| i);
                    mine.into_iter().map(|(_, e)| e).collect::<Vec<_>>()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    for (worker, estimates) in results.iter().enumerate() {
        for (estimate, expected) in estimates.iter().zip(&expected) {
            assert_eq!(
                estimate, expected,
                "worker {worker} diverged from the sequential path"
            );
        }
    }

    // All 16 queries answered; at most one cold profiling per spec plus
    // possible concurrent-miss duplicates, never more than one per query.
    let stats = service.cache_stats();
    assert_eq!(stats.hits + stats.misses, (THREADS * specs.len()) as u64);
    assert!(stats.hits > 0, "warm lookups must hit the cache");
}

#[test]
fn cache_hit_path_returns_the_same_estimate_as_the_cold_path() {
    let device = GpuDevice::rtx3060();
    let service = EstimationService::new(ServiceConfig::for_device(device));
    for spec in specs_under_test() {
        let cold = service.estimate(&spec).expect("cold estimate");
        let warm = service.estimate(&spec).expect("warm estimate");
        assert_eq!(cold, warm, "cache must not perturb {}", spec.label());
    }
    let stats = service.cache_stats();
    assert_eq!(stats.misses, 2);
    assert_eq!(stats.hits, 2);
}

#[test]
fn sweep_matches_a_sequential_estimator_loop() {
    let device = GpuDevice::rtx3060();
    let base =
        TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 1).with_iterations(2);
    let batches: Vec<usize> = vec![1, 2, 4, 8, 12, 16, 24, 32];

    let estimator = Estimator::new(EstimatorConfig::for_device(device));
    let expected: Vec<Estimate> = batches
        .iter()
        .map(|&b| {
            let mut spec = base.clone();
            spec.batch = b;
            estimator.estimate_job(&spec).expect("sequential estimate")
        })
        .collect();

    let service = EstimationService::new(ServiceConfig::for_device(device));
    let swept = service.sweep(&base, &batches);
    assert_eq!(swept.len(), batches.len());
    for ((batch, estimate), (want_batch, want)) in swept.iter().zip(batches.iter().zip(&expected)) {
        assert_eq!(batch, want_batch);
        assert_eq!(
            estimate.as_ref().expect("sweep estimate"),
            want,
            "sweep diverged at batch {batch}"
        );
    }

    // A repeated sweep is answered entirely from cache: no new profiling.
    let insertions_before = service.cache_stats().insertions;
    let again = service.sweep(&base, &batches);
    let stats = service.cache_stats();
    assert_eq!(
        stats.insertions, insertions_before,
        "repeated sweep must not re-profile"
    );
    for ((b1, e1), (b2, e2)) in swept.iter().zip(&again) {
        assert_eq!(b1, b2);
        assert_eq!(e1.as_ref().unwrap(), e2.as_ref().unwrap());
    }
}
