//! The async front end is an exact, better-behaved drop-in for the
//! blocking service: thousands of in-flight futures resolve bit-identical
//! to the sequential `Estimator`, a thundering herd of identical queries
//! coalesces onto one profile run, cancellation and deadlines settle
//! futures without burning profiler time, a bounded queue pushes back
//! with `Busy`, and degenerate jobs are answered from the negative cache.

use std::time::{Duration, Instant};
use xmem::prelude::*;
use xmem::service::AsyncServiceConfig;
use xmem_core::EstimateError;

/// A spec grid small enough to profile quickly but wide enough to spread
/// queries over several distinct cache keys.
fn spec_grid() -> Vec<TrainJobSpec> {
    let mut specs = Vec::new();
    for &batch in &[1usize, 2, 4, 8] {
        specs.push(
            TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, batch)
                .with_iterations(2),
        );
    }
    for &batch in &[2usize, 4] {
        specs.push(
            TrainJobSpec::new(ModelId::DistilGpt2, OptimizerKind::AdamW, batch).with_iterations(2),
        );
    }
    specs
}

/// A job heavy enough to occupy a worker for a while — used to hold a
/// 1-worker pool busy so queued jobs can be cancelled or expired
/// deterministically.
fn heavy_spec() -> TrainJobSpec {
    TrainJobSpec::new(ModelId::Gpt2, OptimizerKind::AdamW, 16).with_iterations(3)
}

#[test]
fn a_thousand_concurrent_futures_match_the_sequential_estimator() {
    const IN_FLIGHT: usize = 1200;

    let device = GpuDevice::rtx3060();
    let specs = spec_grid();

    let estimator = Estimator::new(EstimatorConfig::for_device(device));
    let expected: Vec<Estimate> = specs
        .iter()
        .map(|s| estimator.estimate_job(s).expect("sequential estimate"))
        .collect();

    let service = AsyncEstimationService::new(
        AsyncServiceConfig::for_device(device).with_queue_depth(IN_FLIGHT),
    );
    // Submit 1200 queries cycling over 6 distinct keys before resolving
    // any of them — all 1200 futures are in flight at once.
    let futures: Vec<_> = (0..IN_FLIGHT)
        .map(|i| {
            service
                .submit(&specs[i % specs.len()])
                .expect("queue sized for the whole load")
        })
        .collect();
    let outputs = block_on(join_all(futures));

    assert_eq!(outputs.len(), IN_FLIGHT);
    for (i, output) in outputs.iter().enumerate() {
        let estimate = output.as_ref().expect("estimation succeeds");
        assert_eq!(
            estimate,
            &expected[i % specs.len()],
            "future {i} diverged from the sequential path"
        );
    }

    // Single-flight + cache: the 1200 queries cost at most one profile
    // run per distinct key.
    let inner = service.service();
    assert!(
        inner.profile_runs() <= specs.len() as u64,
        "{} profile runs for {} distinct keys",
        inner.profile_runs(),
        specs.len()
    );
    let stats = inner.cache_stats();
    assert_eq!(stats.hits + stats.misses, IN_FLIGHT as u64);
}

#[test]
fn a_thundering_herd_of_identical_queries_profiles_exactly_once() {
    const HERD: usize = 64;

    let service = AsyncEstimationService::new(
        AsyncServiceConfig::for_device(GpuDevice::rtx3060()).with_queue_depth(HERD),
    );
    let spec =
        TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 8).with_iterations(2);

    let futures: Vec<_> = (0..HERD)
        .map(|_| service.submit(&spec).expect("queue sized for the herd"))
        .collect();
    let outputs = block_on(join_all(futures));

    let first = outputs[0].as_ref().expect("estimation succeeds");
    assert!(outputs
        .iter()
        .all(|o| o.as_ref().expect("estimation succeeds") == first));

    let inner = service.service();
    assert_eq!(
        inner.profile_runs(),
        1,
        "one distinct key must cost exactly one profile/analyze execution"
    );
    assert_eq!(inner.cache_stats().insertions, 1);
    // Every query is exactly one of: a cache hit, a follower coalesced
    // onto an in-flight leader, or a leader run (including the rare
    // leader whose post-claim cache re-check short-circuits) — the three
    // counters partition the herd exactly.
    let flights = inner.flight_stats();
    assert_eq!(
        inner.cache_stats().hits + flights.coalesced + flights.executions,
        HERD as u64
    );
}

#[test]
fn cancellation_reports_and_counters_agree() {
    // One worker busy on a heavy job, so the victim usually sits queued
    // where cancellation reaches it first — but whether cancel wins that
    // race is scheduling-dependent (in release the blocker profiles in
    // milliseconds), so assert the *consistency* contract instead of a
    // fixed outcome: the (took_effect, pre_empted_work) report must
    // always agree with how the future resolves and with the profile
    // counter. The deterministic "cancel wins before any claim"
    // semantics are pinned by xmem-service's future unit tests.
    let service = AsyncEstimationService::new(
        AsyncServiceConfig::for_device(GpuDevice::rtx3060())
            .with_workers(1)
            .with_queue_depth(8),
    );
    let blocker = service.submit(&heavy_spec()).expect("queue has room");
    let victim_spec =
        TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 2).with_iterations(2);
    let victim = service.submit(&victim_spec).expect("queue has room");

    let (took_effect, pre_empted) = victim.cancel();
    let victim_outcome = victim.wait();
    assert!(blocker.wait().is_ok(), "the blocker is never affected");
    // Quiesce the single FIFO worker before reading counters: a sentinel
    // submitted after the victim only completes once the victim's queue
    // slot has been fully processed (run or skipped).
    let sentinel_spec =
        TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 16).with_iterations(2);
    let sentinel = service.submit(&sentinel_spec).expect("queue has room");
    assert!(sentinel.wait().is_ok());
    let runs = service.service().profile_runs();

    if took_effect {
        assert_eq!(victim_outcome, Err(EstimateError::Cancelled));
    } else {
        assert!(victim_outcome.is_ok(), "cancel lost: a result had settled");
    }
    // Blocker and sentinel always profile; the victim's run depends on
    // whether the cancellation pre-empted it.
    if pre_empted {
        assert!(took_effect, "pre-empted work implies the cancel settled");
        assert_eq!(
            runs, 2,
            "a pre-empting cancel saved the victim's profile run"
        );
    } else {
        assert_eq!(
            runs, 3,
            "without pre-emption the victim's profile ran to completion"
        );
    }
}

#[test]
fn a_missed_deadline_resolves_without_profiling() {
    let service = AsyncEstimationService::new(
        AsyncServiceConfig::for_device(GpuDevice::rtx3060())
            .with_workers(1)
            .with_queue_depth(8),
    );
    let blocker = service.submit(&heavy_spec()).expect("queue has room");

    // Already expired at submission: whichever side touches it first —
    // the polling caller, the timer thread, or the worker claiming it —
    // settles it with DeadlineExceeded and never profiles, under any
    // scheduling. block_on only polls, so resolution comes from a wake,
    // not from wait()'s own timeout path. (The timer-thread wake-up for
    // a deadline that is still in the future is pinned deterministically
    // by xmem-service's timer unit tests, with no worker involved.)
    let victim_spec =
        TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 4).with_iterations(2);
    let expired = service
        .submit_with_deadline(&victim_spec, Instant::now() - Duration::from_millis(1))
        .expect("queue has room");
    assert_eq!(block_on(expired), Err(EstimateError::DeadlineExceeded));

    // A generous deadline behaves like no deadline at all.
    let healthy = service
        .submit_with_deadline(&victim_spec, Instant::now() + Duration::from_secs(600))
        .expect("queue has room");
    assert!(healthy.wait().is_ok());

    assert!(blocker.wait().is_ok());
    assert_eq!(
        service.service().profile_runs(),
        2,
        "the expired query must not have profiled"
    );
}

#[test]
fn a_full_submission_queue_pushes_back_with_busy() {
    // One worker (held by the heavy job) and a queue of depth 1: the
    // first submission is claimed or queued, the second fills the queue,
    // and further submissions must fail fast with Busy.
    let service = AsyncEstimationService::new(
        AsyncServiceConfig::for_device(GpuDevice::rtx3060())
            .with_workers(1)
            .with_queue_depth(1),
    );
    let blocker = service.submit(&heavy_spec()).expect("first submission");

    let spec =
        TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 2).with_iterations(2);
    let mut accepted = Vec::new();
    let mut busy = 0;
    for _ in 0..4 {
        match service.submit(&spec) {
            Ok(future) => accepted.push(future),
            Err(SubmitError::Busy) => busy += 1,
        }
    }
    assert!(
        busy >= 2,
        "a depth-1 queue behind a busy worker must reject most of 4 submissions"
    );

    // Backpressure is recoverable: resolve the in-flight work, retry.
    assert!(blocker.wait().is_ok());
    for future in accepted {
        assert!(future.wait().is_ok());
    }
    let retried = service.submit(&spec).expect("queue drained");
    assert!(retried.wait().is_ok());
}

#[test]
fn degenerate_jobs_are_answered_from_the_negative_cache() {
    let service = EstimationService::new(ServiceConfig::for_device(GpuDevice::rtx3060()));
    // Zero profiled iterations: the trace has no ProfilerStep markers and
    // the Analyzer rejects it.
    let degenerate =
        TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 4).with_iterations(0);

    for round in 0..3 {
        assert_eq!(
            service.estimate(&degenerate),
            Err(EstimateError::MissingIterations),
            "round {round}"
        );
    }

    assert_eq!(
        service.profile_runs(),
        1,
        "repeat queries for a degenerate job must hit the negative cache"
    );
    let negative = service.negative_stats();
    assert_eq!(negative.insertions, 1);
    assert_eq!(negative.hits, 2);
    // Failures never pollute the positive cache.
    assert_eq!(service.cache_stats().insertions, 0);
}

#[test]
fn zero_negative_ttl_reverifies_every_query() {
    let config = ServiceConfig::for_device(GpuDevice::rtx3060()).with_negative_ttl(Duration::ZERO);
    let service = EstimationService::new(config);
    let degenerate =
        TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 4).with_iterations(0);

    for _ in 0..2 {
        assert_eq!(
            service.estimate(&degenerate),
            Err(EstimateError::MissingIterations)
        );
    }
    assert_eq!(
        service.profile_runs(),
        2,
        "TTL zero disables negative caching"
    );
}

#[test]
fn async_sweep_and_plan_match_their_blocking_counterparts() {
    let device = GpuDevice::rtx3060();
    let base =
        TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 1).with_iterations(2);
    let batches = [1usize, 2, 4, 8, 16];

    let blocking = EstimationService::new(ServiceConfig::for_device(device));
    let expected_sweep = blocking.sweep(&base, &batches);
    let expected_plan = blocking
        .max_batch_for_device(&base, device, 1, 16)
        .expect("plan succeeds");

    let service = AsyncEstimationService::for_device(device);
    let sweep = service
        .sweep_async(&base, &batches)
        .expect("queue has room");
    let plan = service
        .max_batch_for_device_async(&base, device, 1, 16)
        .expect("queue has room");

    let swept = block_on(sweep).expect("sweep not cancelled");
    assert_eq!(swept.len(), expected_sweep.len());
    for ((b1, e1), (b2, e2)) in swept.iter().zip(&expected_sweep) {
        assert_eq!(b1, b2);
        assert_eq!(
            e1.as_ref().expect("estimate"),
            e2.as_ref().expect("estimate")
        );
    }
    assert_eq!(block_on(plan).expect("plan succeeds"), expected_plan);
}

#[test]
fn the_executor_drives_interleaved_submissions_on_one_thread() {
    let device = GpuDevice::rtx3060();
    let service = std::sync::Arc::new(AsyncEstimationService::for_device(device));
    let specs = spec_grid();

    let estimator = Estimator::new(EstimatorConfig::for_device(device));
    let expected: Vec<Estimate> = specs
        .iter()
        .map(|s| estimator.estimate_job(s).expect("sequential estimate"))
        .collect();

    let results = std::sync::Arc::new(std::sync::Mutex::new(vec![None; specs.len()]));
    let executor = Executor::new();
    for (i, spec) in specs.iter().enumerate() {
        let future = service.submit(spec).expect("queue has room");
        let results = std::sync::Arc::clone(&results);
        executor.spawn(async move {
            let estimate = future.await.expect("estimation succeeds");
            results.lock().expect("results").as_mut_slice()[i] = Some(estimate);
        });
    }
    executor.run();

    let results = results.lock().expect("results");
    for (i, expected) in expected.iter().enumerate() {
        assert_eq!(
            results[i].as_ref().expect("task completed"),
            expected,
            "executor task {i} diverged"
        );
    }
}
