//! End-to-end tests of the cluster tier over real loopback sockets: an
//! in-process ring of `xmem-server` instances with consistent-hash
//! routing must compute each profile/analysis exactly once cluster-wide,
//! answer byte-identically from any node (including while a node is
//! down, via [`ClusterClient`] failover and local fallback), honour the
//! `x-xmem-forwarded` hop guard, and enforce the shared-secret
//! `x-xmem-auth` ingress check.

use std::sync::Arc;
use xmem::prelude::*;
use xmem::server::{
    api, ClusterClient, ClusterConfig, HttpClient, ServerConfig, ServerHandle, AUTH_HEADER,
    FORWARDED_HEADER,
};
use xmem::service::jobspec::job_to_value;
use xmem::service::{hash_job, AsyncServiceConfig, HashRing, JobKey};

const TOKEN: &str = "ring-secret";

fn small_spec(batch: usize) -> TrainJobSpec {
    TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, batch).with_iterations(2)
}

fn job_json(spec: &TrainJobSpec) -> String {
    serde_json::to_string(&job_to_value(spec)).expect("job renders")
}

struct ClusterNode {
    server: ServerHandle,
    service: Arc<AsyncEstimationService>,
    addr: String,
}

/// Binds `n` servers on ephemeral loopback ports, then installs the same
/// ring (every address, shared secret) on each of them.
fn start_ring(n: usize) -> Vec<ClusterNode> {
    let mut bound = Vec::with_capacity(n);
    for _ in 0..n {
        let service = Arc::new(AsyncEstimationService::new(AsyncServiceConfig::for_device(
            GpuDevice::rtx3060(),
        )));
        let server =
            ServerHandle::bind("127.0.0.1:0", Arc::clone(&service), ServerConfig::default())
                .expect("bind loopback");
        bound.push((server, service));
    }
    let addrs: Vec<String> = bound
        .iter()
        .map(|(s, _)| s.local_addr().to_string())
        .collect();
    bound
        .into_iter()
        .zip(addrs.iter())
        .map(|((mut server, service), addr)| {
            server
                .install_cluster(&ClusterConfig {
                    self_addr: addr.clone(),
                    peers: addrs.clone(),
                    auth_token: TOKEN.to_string(),
                })
                .expect("install cluster");
            ClusterNode {
                server,
                service,
                addr: addr.clone(),
            }
        })
        .collect()
}

/// One authenticated POST on a keep-alive client.
fn authed_post(client: &mut HttpClient, path: &str, body: &str) -> xmem::server::ClientResponse {
    client
        .request(
            "POST",
            path,
            &[("content-type", "application/json"), (AUTH_HEADER, TOKEN)],
            body.as_bytes(),
        )
        .expect("authenticated exchange")
}

/// The value of an unlabelled Prometheus counter in `metrics`.
fn counter_value(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find_map(|line| line.strip_prefix(&format!("{name} "))?.trim().parse().ok())
        .unwrap_or(0)
}

/// A batch size whose estimate key is ring-owned by `owner`.
fn batch_owned_by(ring: &HashRing, owner: usize) -> usize {
    (2..200)
        .find(|&batch| ring.owner_index(hash_job(&JobKey::of(&small_spec(batch)))) == Some(owner))
        .expect("some batch lands on every ring node")
}

/// The tentpole economy: K distinct job keys sent to *every* node of a
/// 3-node ring are each profiled exactly once cluster-wide (non-owners
/// forward), every answer is byte-identical to the direct service call,
/// and a second pass is answered entirely locally — the forwarded
/// response filled each non-owner's sim cell.
#[test]
fn each_distinct_key_is_analyzed_exactly_once_cluster_wide() {
    let nodes = start_ring(3);
    let direct = EstimationService::for_device(GpuDevice::rtx3060());
    let batches = [2usize, 3, 5, 6, 7, 9];

    let mut clients: Vec<HttpClient> = nodes
        .iter()
        .map(|node| HttpClient::connect(node.addr.as_str()).expect("connect"))
        .collect();
    let run_pass = |clients: &mut Vec<HttpClient>| {
        for &batch in &batches {
            let spec = small_spec(batch);
            let body = job_json(&spec);
            let want = api::estimate_body(&direct.estimate(&spec).expect("direct estimate"));
            for client in clients.iter_mut() {
                let response = authed_post(client, "/v1/estimate", &body);
                assert_eq!(response.status, 200, "{}", response.text());
                assert_eq!(
                    response.text(),
                    want.as_str(),
                    "batch {batch} diverged from the direct path"
                );
            }
        }
    };

    run_pass(&mut clients);
    let profiles_after_first: u64 = nodes
        .iter()
        .map(|n| n.service.service().profile_runs())
        .sum();
    assert_eq!(
        profiles_after_first,
        batches.len() as u64,
        "each distinct JobKey must be profiled exactly once across the ring"
    );
    let forwards_after_first: u64 = nodes
        .iter()
        .map(|n| {
            let state = n.server.cluster().expect("cluster installed");
            counter_value(&state.render_prometheus(), "xmem_cluster_forwards_total")
        })
        .sum();
    // Every key has exactly one owner and two non-owners, and each
    // non-owner forwarded its first sighting.
    assert_eq!(forwards_after_first, (batches.len() * 2) as u64);

    // Second pass: owners answer from their caches, non-owners from the
    // sim cells the forwarded responses filled — no new profile, no new
    // forward, still byte-identical.
    run_pass(&mut clients);
    let profiles_after_second: u64 = nodes
        .iter()
        .map(|n| n.service.service().profile_runs())
        .sum();
    assert_eq!(profiles_after_second, profiles_after_first);
    let forwards_after_second: u64 = nodes
        .iter()
        .map(|n| {
            let state = n.server.cluster().expect("cluster installed");
            counter_value(&state.render_prometheus(), "xmem_cluster_forwards_total")
        })
        .sum();
    assert_eq!(
        forwards_after_second, forwards_after_first,
        "warm keys must be served locally"
    );
    let fills: u64 = nodes
        .iter()
        .map(|n| {
            let state = n.server.cluster().expect("cluster installed");
            counter_value(&state.render_prometheus(), "xmem_cluster_cell_fills_total")
        })
        .sum();
    assert_eq!(
        fills,
        (batches.len() * 2) as u64,
        "every forward fills a local cell"
    );

    for node in nodes {
        assert!(node.server.shutdown().clean);
    }
}

/// The acceptance mix: with one ring node shut down, a [`ClusterClient`]
/// completes estimates (including one whose *owner* is the dead node),
/// a placement and a sweep — every body byte-identical to the direct
/// service — while recording at least one failover; the survivors mark
/// the dead peer down and export it on `/metrics`.
#[test]
fn cluster_client_completes_a_request_mix_bit_identically_with_a_node_down() {
    let mut nodes = start_ring(3);
    let addrs: Vec<String> = nodes.iter().map(|n| n.addr.clone()).collect();
    let ring = HashRing::new(&addrs);

    // Kill the node that owns a known key, so at least one request is
    // *guaranteed* to first dial a dead address.
    let victim_addr = addrs[2].clone();
    let victim_ring_index = ring
        .index_of(&victim_addr)
        .expect("victim is a ring member");
    let owned_batch = batch_owned_by(&ring, victim_ring_index);
    let victim = nodes.remove(2);
    assert!(victim.server.shutdown().clean);

    let direct = EstimationService::for_device(GpuDevice::rtx3060());
    let mut client = ClusterClient::new(&addrs, Some(TOKEN));

    // Estimates: the victim-owned key plus two others.
    for batch in [owned_batch, 3, 4] {
        let spec = small_spec(batch);
        let response = client
            .post_json("/v1/estimate", &job_json(&spec))
            .expect("estimate completes despite the dead node");
        assert_eq!(response.status, 200, "{}", response.text());
        assert_eq!(
            response.text(),
            api::estimate_body(&direct.estimate(&spec).expect("direct estimate")),
            "batch {batch} diverged with a node down"
        );
    }
    // Placement.
    let spec = small_spec(4);
    let response = client
        .post_json("/v1/best-device", &job_json(&spec))
        .expect("best-device completes");
    assert_eq!(response.status, 200, "{}", response.text());
    assert_eq!(
        response.text(),
        api::placement_body(direct.best_device_for_job(&spec).expect("places").as_ref())
    );
    // A sweep (family-placed).
    let sweep_request = format!(
        "{{\"job\":{},\"batches\":[1,2,4]}}",
        job_json(&small_spec(1))
    );
    let response = client
        .post_json("/v1/sweep", &sweep_request)
        .expect("sweep completes");
    assert_eq!(response.status, 200, "{}", response.text());
    assert_eq!(
        response.text(),
        api::sweep_body(&direct.sweep(&small_spec(1), &[1, 2, 4]))
    );

    assert!(
        client.failovers() >= 1,
        "the victim-owned request must have failed over"
    );

    // At least one survivor attempted a forward to the dead owner,
    // marked it down, and answered locally instead.
    let mut saw_down = false;
    let mut fallbacks = 0;
    for node in &nodes {
        let mut probe = HttpClient::connect(node.addr.as_str()).expect("connect survivor");
        let metrics = probe.get("/metrics").expect("metrics stay open");
        assert_eq!(metrics.status, 200);
        let text = metrics.text().into_owned();
        saw_down |= text.contains(&format!("xmem_cluster_peer_up{{peer=\"{victim_addr}\"}} 0"));
        fallbacks += counter_value(&text, "xmem_cluster_local_fallbacks_total");
    }
    assert!(saw_down, "a survivor must export the dead peer as down");
    assert!(
        fallbacks >= 1,
        "owner-down requests must count local fallbacks"
    );

    for node in nodes {
        assert!(node.server.shutdown().clean);
    }
}

/// Ingress auth and the hop guard: `/v1` routes demand the shared secret
/// the moment a cluster is installed (`/healthz` and `/metrics` stay
/// open), and a request bearing `x-xmem-forwarded` is computed locally
/// even when the ring owns it elsewhere — loops are impossible by
/// construction.
#[test]
fn auth_gates_v1_and_the_hop_guard_computes_locally() {
    let nodes = start_ring(2);
    let node_a = &nodes[0];
    let node_b = &nodes[1];
    let ring = HashRing::new(&[node_a.addr.clone(), node_b.addr.clone()]);

    let mut client = HttpClient::connect(node_a.addr.as_str()).expect("connect");
    // Anonymous /v1 traffic: 401 with the stable error body.
    let denied = client
        .post_json("/v1/estimate", &job_json(&small_spec(2)))
        .expect("401 answer");
    assert_eq!(denied.status, 401);
    assert!(denied.text().contains("unauthorized"), "{}", denied.text());
    // A wrong token is just as anonymous.
    let wrong = client
        .request(
            "POST",
            "/v1/estimate",
            &[("content-type", "application/json"), (AUTH_HEADER, "nope")],
            job_json(&small_spec(2)).as_bytes(),
        )
        .expect("401 answer");
    assert_eq!(wrong.status, 401);
    // Probes and scrapers stay open.
    assert_eq!(client.get("/healthz").expect("healthz").status, 200);
    assert_eq!(client.get("/metrics").expect("metrics").status, 200);

    // A key owned by B, sent to A with the hop guard: A computes it
    // locally — no forward, one forwarded-request served.
    let b_ring_index = ring.index_of(&node_b.addr).expect("B is a ring member");
    let hop_batch = batch_owned_by(&ring, b_ring_index);
    let spec = small_spec(hop_batch);
    let response = client
        .request(
            "POST",
            "/v1/estimate",
            &[
                ("content-type", "application/json"),
                (AUTH_HEADER, TOKEN),
                (FORWARDED_HEADER, "test-suite"),
            ],
            job_json(&spec).as_bytes(),
        )
        .expect("forwarded exchange");
    assert_eq!(response.status, 200, "{}", response.text());
    assert_eq!(node_a.service.service().profile_runs(), 1, "A computed it");
    assert_eq!(node_b.service.service().profile_runs(), 0, "B never saw it");
    let state = node_a.server.cluster().expect("cluster installed");
    let metrics = state.render_prometheus();
    assert_eq!(counter_value(&metrics, "xmem_cluster_forwards_total"), 0);
    assert_eq!(
        counter_value(&metrics, "xmem_cluster_forwarded_requests_total"),
        1
    );

    for node in nodes {
        assert!(node.server.shutdown().clean);
    }
}

/// One authenticated GET on a keep-alive client.
fn authed_get(client: &mut HttpClient, path: &str) -> xmem::server::ClientResponse {
    client
        .request("GET", path, &[(AUTH_HEADER, TOKEN)], b"")
        .expect("authenticated exchange")
}

/// The traces array of a node's `/v1/debug/traces` answer.
fn debug_traces(client: &mut HttpClient) -> serde::Value {
    let response = authed_get(client, "/v1/debug/traces?n=32");
    assert_eq!(response.status, 200, "{}", response.text());
    serde_json::from_str(&response.text()).expect("traces JSON")
}

/// The trace with `trace_id` in a `/v1/debug/traces` body, if recorded.
fn trace_with_id<'a>(value: &'a serde::Value, id: &str) -> Option<&'a serde::Value> {
    value
        .as_object()
        .and_then(|o| serde::obj_get(o, "traces"))
        .and_then(serde::Value::as_array)?
        .iter()
        .find(|trace| {
            trace
                .as_object()
                .and_then(|o| serde::obj_get(o, "trace_id"))
                .and_then(serde::Value::as_str)
                == Some(id)
        })
}

/// Span `(name, outcome)` pairs of one trace object.
fn span_outcomes(trace: &serde::Value) -> Vec<(String, String)> {
    trace
        .as_object()
        .and_then(|o| serde::obj_get(o, "spans"))
        .and_then(serde::Value::as_array)
        .expect("spans array")
        .iter()
        .map(|span| {
            let entries = span.as_object().expect("span object");
            (
                serde::obj_get(entries, "name")
                    .and_then(serde::Value::as_str)
                    .expect("span name")
                    .to_string(),
                serde::obj_get(entries, "outcome")
                    .and_then(serde::Value::as_str)
                    .expect("span outcome")
                    .to_string(),
            )
        })
        .collect()
}

/// The acceptance trace: a request whose key is ring-owned elsewhere,
/// sent through a 3-node ring, yields ONE stitched trace — the ingress
/// node records the `cluster.forward` hop and the owner records the
/// remote compute, both under the same client-pinned trace id.
#[test]
fn a_forwarded_request_yields_one_stitched_trace_across_the_ring() {
    let nodes = start_ring(3);
    let addrs: Vec<String> = nodes.iter().map(|n| n.addr.clone()).collect();
    let ring = HashRing::new(&addrs);

    // A key owned by node 1, presented at node 0: node 0 must forward.
    let owner_ring_index = ring.index_of(&nodes[1].addr).expect("ring member");
    let batch = batch_owned_by(&ring, owner_ring_index);
    let pinned_id = "feedfacefeedfacefeedfacefeedface";
    let mut ingress = HttpClient::connect(nodes[0].addr.as_str()).expect("connect ingress");
    let response = ingress
        .request(
            "POST",
            "/v1/estimate",
            &[
                ("content-type", "application/json"),
                (AUTH_HEADER, TOKEN),
                ("x-xmem-trace-id", pinned_id),
            ],
            job_json(&small_spec(batch)).as_bytes(),
        )
        .expect("forwarded estimate");
    assert_eq!(response.status, 200, "{}", response.text());

    // Hop 1, the ingress node: the trace shows the forward and is not
    // itself marked as a forwarded arrival.
    let ingress_traces = debug_traces(&mut ingress);
    let hop1 =
        trace_with_id(&ingress_traces, pinned_id).expect("ingress recorded the pinned trace id");
    let entries = hop1.as_object().expect("trace object");
    assert_eq!(
        serde::obj_get(entries, "forwarded").cloned(),
        Some(serde::Value::Bool(false))
    );
    let hop1_spans = span_outcomes(hop1);
    assert!(
        hop1_spans
            .iter()
            .any(|(name, outcome)| name == "cluster.forward" && outcome == "forwarded"),
        "ingress spans: {hop1_spans:?}"
    );

    // Hop 2, the owner: same trace id, marked forwarded, carrying the
    // remote-compute span timeline (the full cold pipeline ran there).
    let mut owner = HttpClient::connect(nodes[1].addr.as_str()).expect("connect owner");
    let owner_traces = debug_traces(&mut owner);
    let hop2 = trace_with_id(&owner_traces, pinned_id).expect("owner adopted the relayed trace id");
    let entries = hop2.as_object().expect("trace object");
    assert_eq!(
        serde::obj_get(entries, "forwarded").cloned(),
        Some(serde::Value::Bool(true))
    );
    let hop2_spans = span_outcomes(hop2);
    assert!(hop2_spans.len() >= 3, "owner spans: {hop2_spans:?}");
    for needle in ["pool.queue", "service.call", "stage.profile"] {
        assert!(
            hop2_spans.iter().any(|(name, _)| name == needle),
            "owner trace missing `{needle}`: {hop2_spans:?}"
        );
    }
    // The third node never touched the request and must not have the id.
    let mut bystander = HttpClient::connect(nodes[2].addr.as_str()).expect("connect bystander");
    let bystander_traces = debug_traces(&mut bystander);
    assert!(
        trace_with_id(&bystander_traces, pinned_id).is_none(),
        "the bystander must not record the trace"
    );

    for node in nodes {
        assert!(node.server.shutdown().clean);
    }
}

/// `/healthz` reports the cluster role once a ring is installed: peer
/// count and the node's own ring address, alongside version and uptime.
#[test]
fn healthz_reports_the_cluster_role() {
    let nodes = start_ring(3);
    for node in &nodes {
        let mut client = HttpClient::connect(node.addr.as_str()).expect("connect");
        let health = client.get("/healthz").expect("healthz stays open");
        assert_eq!(health.status, 200);
        let value: serde::Value = serde_json::from_str(&health.text()).expect("healthz JSON");
        let entries = value.as_object().expect("healthz object");
        assert_eq!(
            serde::obj_get(entries, "status").and_then(serde::Value::as_str),
            Some("ok")
        );
        let cluster = serde::obj_get(entries, "cluster")
            .and_then(serde::Value::as_object)
            .expect("cluster role object");
        assert_eq!(
            serde::obj_get(cluster, "peers").and_then(serde::Value::as_u64),
            Some(2),
            "a 3-node ring has two peers"
        );
        assert_eq!(
            serde::obj_get(cluster, "self").and_then(serde::Value::as_str),
            Some(node.addr.as_str()),
            "{}",
            health.text()
        );
    }
    for node in nodes {
        assert!(node.server.shutdown().clean);
    }
}
