//! The a-priori contract: xMem works from a profiler *file*. Serializing
//! the CPU trace to JSON and re-parsing it must not change the estimate.

use xmem::prelude::*;
use xmem::trace::Trace;

#[test]
fn json_roundtrip_preserves_the_estimate() {
    let spec = TrainJobSpec::new(ModelId::DistilGpt2, OptimizerKind::AdamW, 8);
    let trace = profile_on_cpu(&spec);
    let json = trace.to_json_string().expect("serialize");
    let parsed = Trace::from_json_str(&json).expect("parse");

    let estimator = Estimator::new(EstimatorConfig::for_device(GpuDevice::rtx3060()));
    let direct = estimator.estimate_trace(&trace).expect("direct estimate");
    let roundtrip = estimator
        .estimate_trace(&parsed)
        .expect("roundtrip estimate");
    assert_eq!(direct.peak_bytes, roundtrip.peak_bytes);
    assert_eq!(direct.job_peak_bytes, roundtrip.job_peak_bytes);
    assert_eq!(direct.oom_predicted, roundtrip.oom_predicted);
}

#[test]
fn traces_have_the_profiler_schema() {
    let spec =
        TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 4).with_iterations(2);
    let trace = profile_on_cpu(&spec);
    let json = trace.to_json_string().expect("serialize");
    for needle in [
        "\"traceEvents\"",
        "\"cpu_op\"",
        "\"python_function\"",
        "\"user_annotation\"",
        "\"cpu_instant_event\"",
        "ProfilerStep#1",
        "Optimizer.step#Adam.step",
        "Optimizer.zero_grad#Adam.zero_grad",
        "aten::convolution",
        "autograd::engine::evaluate_function",
        "\"Addr\"",
        "\"Bytes\"",
    ] {
        assert!(json.contains(needle), "schema is missing {needle}");
    }
}

#[test]
fn foreign_events_do_not_break_estimation() {
    // A real PyTorch export contains categories xMem ignores; splice some
    // in and re-estimate.
    let spec =
        TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 4).with_iterations(2);
    let trace = profile_on_cpu(&spec);
    let json = trace.to_json_string().expect("serialize");
    let spliced = json.replacen(
        "{\"ph\":\"X\",\"cat\":\"cpu_op\"",
        "{\"ph\":\"X\",\"cat\":\"kernel\",\"name\":\"volta_sgemm\",\"pid\":9,\"tid\":9,\"ts\":1,\"dur\":5},\
         {\"ph\":\"X\",\"cat\":\"cpu_op\"",
        1,
    );
    let parsed = Trace::from_json_str(&spliced).expect("parse");
    let estimator = Estimator::new(EstimatorConfig::for_device(GpuDevice::rtx3060()));
    let a = estimator.estimate_trace(&trace).expect("baseline");
    let b = estimator.estimate_trace(&parsed).expect("spliced");
    assert_eq!(a.peak_bytes, b.peak_bytes);
}
