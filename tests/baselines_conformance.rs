//! Baseline estimators: interface conformance and the characteristic
//! blind spots §5 attributes to each method.

use xmem::baselines::{DnnMem, LlMem, MemoryEstimator};
use xmem::prelude::*;

#[test]
fn only_llmem_consumes_the_gpu() {
    assert!(LlMem::new().consumes_gpu());
    assert!(!DnnMem::new().consumes_gpu());
}

#[test]
fn dnnmem_misses_optimizer_state_but_xmem_does_not() {
    let device = GpuDevice::rtx3060();
    let sgd = TrainJobSpec::new(ModelId::Gpt2, OptimizerKind::Sgd { momentum: false }, 10);
    let adam = TrainJobSpec::new(ModelId::Gpt2, OptimizerKind::Adam, 10);

    let dnn = DnnMem::new();
    let d_sgd = dnn.estimate(&sgd, &device).unwrap().peak_bytes;
    let d_adam = dnn.estimate(&adam, &device).unwrap().peak_bytes;
    assert_eq!(d_sgd, d_adam, "static analysis is optimizer-blind");

    let estimator = Estimator::new(EstimatorConfig::for_device(device));
    let x_sgd = estimator.estimate_job(&sgd).unwrap().peak_bytes;
    let x_adam = estimator.estimate_job(&adam).unwrap().peak_bytes;
    // Adam adds ~2x parameter bytes of state: ~1 GiB for GPT-2.
    assert!(
        x_adam > x_sgd + (800 << 20),
        "xMem sees optimizer state: {x_sgd} vs {x_adam}"
    );
}

#[test]
fn dnnmem_is_blind_to_zero_grad_but_xmem_is_not() {
    let device = GpuDevice::rtx3060();
    let pos0 = TrainJobSpec::new(ModelId::GptNeo125M, OptimizerKind::AdamW, 8);
    let pos1 = pos0.clone().with_zero_grad(ZeroGradPos::IterStart);

    let dnn = DnnMem::new();
    assert_eq!(
        dnn.estimate(&pos0, &device).unwrap().peak_bytes,
        dnn.estimate(&pos1, &device).unwrap().peak_bytes
    );

    let estimator = Estimator::new(EstimatorConfig::for_device(device));
    let x0 = estimator.estimate_job(&pos0).unwrap().peak_bytes;
    let x1 = estimator.estimate_job(&pos1).unwrap().peak_bytes;
    assert_ne!(x0, x1, "xMem distinguishes code placement");
    assert!(x0 > x1, "POS0 keeps gradients alive longer");
}

#[test]
fn llmem_is_transformer_only() {
    let llmem = LlMem::new();
    let device = GpuDevice::rtx3060();
    for model in [ModelId::Vgg16, ModelId::ResNet152, ModelId::ConvNextBase] {
        assert!(!llmem.supports(model));
        let spec = TrainJobSpec::new(model, OptimizerKind::Adam, 200);
        assert!(llmem.estimate(&spec, &device).is_none());
    }
    assert!(llmem.supports(ModelId::Gpt2));
}

#[test]
fn llmem_fails_when_the_probe_cannot_fit() {
    // Pythia-1B + Adam needs ~16 GiB statically; the batch-1 probe OOMs on
    // a 12 GiB card and LLMem reports failure — a weakness xMem does not
    // share (CPU RAM is not the constraint).
    let device = GpuDevice::rtx3060();
    let spec = TrainJobSpec::new(ModelId::Pythia1B, OptimizerKind::Adam, 2);
    assert!(LlMem::new().estimate(&spec, &device).is_none());

    let est = Estimator::new(EstimatorConfig::for_device(device))
        .estimate_job(&spec)
        .expect("xMem estimates regardless");
    assert!(est.oom_predicted, "and correctly predicts the OOM");
}
