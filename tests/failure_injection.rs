//! Failure injection: the pipeline must degrade gracefully on damaged
//! traces — the tolerance behaviours the Analyzer documents.

use xmem::core::{Analyzer, EstimateError};
use xmem::prelude::*;
use xmem::trace::{names, EventCategory, Trace, TraceEvent};

fn healthy_trace() -> Trace {
    let spec =
        TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 4).with_iterations(2);
    profile_on_cpu(&spec)
}

#[test]
fn truncated_trace_still_estimates() {
    // Keep only the first half of the events (profiler died mid-run but
    // past iteration 1).
    let full = healthy_trace();
    let keep = full.events().len() / 2;
    let mut truncated = Trace::new(full.name());
    for e in full.events().iter().take(keep) {
        truncated.push(e.clone());
    }
    // Iteration-1 markers may be gone; re-add a synthetic one spanning the
    // kept window so phases remain delimited.
    if truncated.iteration_windows().is_empty() {
        truncated.push(TraceEvent::span(
            EventCategory::UserAnnotation,
            names::profiler_step(1),
            0,
            truncated.end_us() + 1,
        ));
        truncated.sort_by_time();
    }
    let estimator = Estimator::new(EstimatorConfig::for_device(GpuDevice::rtx3060()));
    let est = estimator
        .estimate_trace(&truncated)
        .expect("degraded estimate");
    assert!(est.peak_bytes > 0);
}

#[test]
fn missing_zero_grad_annotations_fall_back_gracefully() {
    // Strip all zero_grad markers: gradient lifecycles fall back to
    // persistent (conservative), estimation still succeeds.
    let full = healthy_trace();
    let mut stripped = Trace::new(full.name());
    for e in full.events() {
        if !names::is_optimizer_zero_grad(&e.name) {
            stripped.push(e.clone());
        }
    }
    let estimator = Estimator::new(EstimatorConfig::for_device(GpuDevice::rtx3060()));
    let with_markers = estimator.estimate_trace(&full).expect("baseline");
    let without = estimator.estimate_trace(&stripped).expect("degraded");
    assert!(
        without.peak_bytes >= with_markers.peak_bytes,
        "persistent-gradient fallback must not underestimate"
    );
}

#[test]
fn unmatched_frees_are_tolerated_and_counted() {
    let mut trace = healthy_trace();
    for i in 0..5 {
        trace.push(TraceEvent::mem_free(10 + i, 0xdead_0000 + i, 64, -1));
    }
    trace.sort_by_time();
    let analyzed = Analyzer::new().analyze(&trace).expect("tolerant analysis");
    assert_eq!(analyzed.lifecycle_stats.unmatched_frees, 5);
}

#[test]
fn empty_and_markerless_traces_error_cleanly() {
    let estimator = Estimator::new(EstimatorConfig::for_device(GpuDevice::rtx3060()));
    let empty = Trace::new("empty");
    assert!(matches!(
        estimator.estimate_trace(&empty),
        Err(EstimateError::EmptyTrace)
    ));

    let mut markerless = Trace::new("markerless");
    markerless.push(TraceEvent::mem_alloc(0, 0x10, 512, -1));
    assert!(matches!(
        estimator.estimate_trace(&markerless),
        Err(EstimateError::MissingIterations)
    ));
}

#[test]
fn gpu_device_events_are_ignored_by_the_cpu_analyzer() {
    // Mixed-device traces (CUDA memory instants interleaved) must not
    // perturb the CPU-side analysis.
    let base = healthy_trace();
    let mut mixed = Trace::new(base.name());
    for e in base.events() {
        mixed.push(e.clone());
    }
    for i in 0..50 {
        mixed.push(TraceEvent::mem_alloc(i * 3, 0xccc0_0000 + i, 1 << 20, 0));
    }
    mixed.sort_by_time();
    let estimator = Estimator::new(EstimatorConfig::for_device(GpuDevice::rtx3060()));
    let a = estimator.estimate_trace(&base).expect("baseline");
    let b = estimator.estimate_trace(&mixed).expect("mixed");
    assert_eq!(a.peak_bytes, b.peak_bytes);
}

#[test]
fn a_panicking_estimation_job_settles_its_future_and_spares_the_pool() {
    use xmem::service::{promise_pair, WorkerPool};

    // One worker, so pool survival is observable: if the panic killed the
    // worker thread, none of the follow-up queries could complete.
    let pool = WorkerPool::new(1, 32);
    let (promise, poisoned) = promise_pair::<Result<Estimate, EstimateError>>(None);
    pool.try_execute_settling(promise, || -> Result<Estimate, EstimateError> {
        panic!("injected mid-estimation panic")
    })
    .expect("queue has room");

    // The caller is not stranded: the future resolves to the new
    // internal-error variant carrying the panic payload.
    match poisoned.wait() {
        Err(EstimateError::Internal(message)) => {
            assert!(
                message.contains("injected mid-estimation panic"),
                "{message}"
            );
        }
        other => panic!("expected Internal, got {other:?}"),
    }

    // The pool still serves the next N queries — real estimations, run on
    // the very worker the panic unwound through.
    let spec =
        TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 2).with_iterations(2);
    let expected = Estimator::new(EstimatorConfig::for_device(GpuDevice::rtx3060()))
        .estimate_job(&spec)
        .expect("sequential estimate");
    for round in 0..5 {
        let (promise, future) = promise_pair::<Result<Estimate, EstimateError>>(None);
        let spec = spec.clone();
        pool.try_execute_settling(promise, move || {
            Estimator::new(EstimatorConfig::for_device(GpuDevice::rtx3060())).estimate_job(&spec)
        })
        .expect("queue has room");
        assert_eq!(
            future.wait().expect("round succeeds"),
            expected,
            "round {round}"
        );
    }
    assert_eq!(
        pool.panics(),
        0,
        "settling jobs catch their own panics before the worker loop sees them"
    );
}
