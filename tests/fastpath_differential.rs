//! The pressure-aware fast-path differential suite: every matrix cell a
//! fast-path service produces must be **bit-identical** to a service with
//! the fast path forced off (full stateful replays) and to the sequential
//! `Estimator` — across roomy fleets (where every cell is derived from
//! one unbounded replay), pressured fleets (where reclaim/OOM divergence
//! forces full replays), and deterministic pseudo-random fleets with
//! page-unaligned capacities. The counters must prove the replay-strategy
//! split exactly: `fast_path_hits + full_replays == sim_runs`, and an
//! all-roomy fleet performs **zero** full replays after the one unbounded
//! replay per job.

use xmem::prelude::*;
use xmem::service::ServiceConfig;

fn job_grid() -> Vec<TrainJobSpec> {
    vec![
        TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 4).with_iterations(2),
        TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 16).with_iterations(2),
        TrainJobSpec::new(ModelId::DistilGpt2, OptimizerKind::AdamW, 2).with_iterations(2),
    ]
}

/// A pair of services over the same fleet: one with the fast path (the
/// default), one with it forced off.
fn service_pair(fleet: &[(&str, GpuDevice)]) -> (EstimationService, EstimationService) {
    let build = |fast: bool| {
        let registry = DeviceRegistry::empty();
        for &(name, device) in fleet {
            registry.register(name, device);
        }
        EstimationService::new(
            ServiceConfig::for_device(GpuDevice::rtx3060())
                .with_registry(registry)
                .with_fast_path(fast),
        )
    };
    (build(true), build(false))
}

fn assert_matrices_identical(fleet: &[(&str, GpuDevice)], jobs: &[TrainJobSpec]) {
    let (fast, full) = service_pair(fleet);
    let names: Vec<&str> = fleet.iter().map(|&(name, _)| name).collect();
    let fast_matrix = fast.estimate_matrix(jobs, &names).expect("names resolve");
    let full_matrix = full.estimate_matrix(jobs, &names).expect("names resolve");
    assert_eq!(
        fast_matrix, full_matrix,
        "fast-path matrix diverged from forced full replays"
    );

    // Cell-level anchor against the sequential estimator (covers the
    // whole pipeline, not just service-vs-service agreement).
    for (row, spec) in fast_matrix.rows.iter().zip(jobs) {
        for (name, device) in fleet {
            let sequential = Estimator::new(EstimatorConfig::for_device(*device))
                .estimate_job(spec)
                .expect("sequential estimate succeeds");
            assert_eq!(
                row.cell(name).expect("cell").estimate.as_ref().unwrap(),
                &sequential,
                "cell ({}, {name}) diverged from the sequential estimator",
                spec.label()
            );
        }
    }

    // The strategy split is exact and exhaustive.
    let stats = fast.sim_stats();
    assert_eq!(stats.fast_path_hits + stats.full_replays, stats.sim_runs);
    let stats = full.sim_stats();
    assert_eq!(stats.fast_path_hits, 0, "disabled fast path must not fire");
    assert_eq!(stats.unbounded_replays, 0);
    assert_eq!(stats.full_replays, stats.sim_runs);
}

#[test]
fn roomy_fleet_is_identical_with_zero_full_replays() {
    // Odd byte capacities (not MiB-aligned) — roomy, but exercising the
    // page-rounding edge of the qualification check.
    let fleet = [
        (
            "roomy-16",
            GpuDevice {
                name: "diff-roomy-16",
                capacity: (16 << 30) + 12_345_678,
                framework_bytes: 537 << 20,
                init_bytes: 0,
            },
        ),
        (
            "roomy-24",
            GpuDevice {
                name: "diff-roomy-24",
                capacity: (24 << 30) + 999,
                framework_bytes: 544 << 20,
                init_bytes: 64 << 20,
            },
        ),
        ("roomy-a100", GpuDevice::a100_40g()),
    ];
    let jobs = job_grid();
    assert_matrices_identical(&fleet, &jobs);

    let (fast, _) = service_pair(&fleet);
    let names: Vec<&str> = fleet.iter().map(|&(n, _)| n).collect();
    fast.estimate_matrix(&jobs, &names).expect("names resolve");
    let stats = fast.sim_stats();
    assert_eq!(
        stats.full_replays, 0,
        "an all-roomy fleet pays no bounded replay at all"
    );
    assert_eq!(stats.unbounded_replays, jobs.len() as u64);
    assert_eq!(stats.fast_path_hits, (jobs.len() * fleet.len()) as u64);
}

#[test]
fn pressured_fleet_splits_strategies_but_never_diverges() {
    // Two devices small enough that DistilGpt2 (and at 16, even the CNN's
    // segment peak) pressures them, plus one roomy device: the same
    // matrix must mix derived and fully replayed cells.
    let fleet = [
        (
            "tiny",
            GpuDevice {
                name: "diff-tiny",
                capacity: (1 << 30) + 777_777,
                framework_bytes: 512 << 20,
                init_bytes: 0,
            },
        ),
        (
            "cramped",
            GpuDevice {
                name: "diff-cramped",
                capacity: (2 << 30) + 55_555,
                framework_bytes: 529 << 20,
                init_bytes: 128 << 20,
            },
        ),
        ("roomy", GpuDevice::a100_40g()),
    ];
    let jobs = job_grid();
    assert_matrices_identical(&fleet, &jobs);

    let (fast, _) = service_pair(&fleet);
    let names: Vec<&str> = fleet.iter().map(|&(n, _)| n).collect();
    fast.estimate_matrix(&jobs, &names).expect("names resolve");
    let stats = fast.sim_stats();
    assert!(
        stats.full_replays > 0,
        "pressured devices must pay full replays"
    );
    assert!(
        stats.fast_path_hits > 0,
        "the roomy column must still derive"
    );
    assert_eq!(stats.fast_path_hits + stats.full_replays, stats.sim_runs);
}

#[test]
fn pseudo_random_fleets_are_identical_across_strategies() {
    // Deterministic xorshift over capacities/overheads: many oddly sized
    // fleets, no external RNG dependency in the root test crate.
    const NAMES: [&str; 4] = ["rand-0", "rand-1", "rand-2", "rand-3"];
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let jobs = [
        TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 8).with_iterations(2),
        TrainJobSpec::new(ModelId::DistilGpt2, OptimizerKind::AdamW, 2).with_iterations(2),
    ];
    for _round in 0..4 {
        let fleet: Vec<(&str, GpuDevice)> = NAMES
            .iter()
            .map(|&name| {
                (
                    name,
                    GpuDevice {
                        name: "diff-rand",
                        // 1.4 GB .. ~18 GB, byte-granular.
                        capacity: 1_400_000_000 + next() % 17_000_000_000,
                        framework_bytes: 500_000_000 + next() % 90_000_000,
                        init_bytes: next() % 130_000_000,
                    },
                )
            })
            .collect();
        assert_matrices_identical(&fleet, &jobs);
    }
}

#[test]
fn placement_and_admission_agree_across_strategies() {
    let fleet = [
        ("rtx3060", GpuDevice::rtx3060()),
        ("rtx4060", GpuDevice::rtx4060()),
        ("a100", GpuDevice::a100_40g()),
    ];
    let (fast, full) = service_pair(&fleet);
    for spec in job_grid() {
        assert_eq!(
            fast.best_device_for_job(&spec).expect("estimates"),
            full.best_device_for_job(&spec).expect("estimates"),
            "placement diverged for {}",
            spec.label()
        );
    }
    let base = TrainJobSpec::new(ModelId::DistilGpt2, OptimizerKind::AdamW, 1).with_iterations(2);
    assert_eq!(
        fast.max_batch_for_device(&base, GpuDevice::rtx4060(), 1, 32)
            .expect("estimates"),
        full.max_batch_for_device(&base, GpuDevice::rtx4060(), 1, 32)
            .expect("estimates"),
        "admission-control answer diverged"
    );
}
