//! The incremental-sweep differential suite: every cell an incremental
//! (parameterized-replay) sweep produces must be **bit-identical** to the
//! sequential per-batch `Estimator` and to a service with the incremental
//! path forced off — across roomy devices (cells derived from one
//! unbounded buffer replay), pressured devices (cells replayed bounded
//! from the materialized buffer), and deterministic pseudo-random fleets
//! with page-unaligned capacities. The counters must prove the contract
//! exactly: a B-point sweep performs **one** parameterized fit from three
//! anchor profiles, every cell counts as `incremental_cells`, and
//! `fast_path_hits + full_replays + incremental_cells == sim_runs`.

use xmem::prelude::*;
use xmem::service::ServiceConfig;

/// The swept batch grid: dense enough to clear the incremental
/// eligibility floor, with interior points the anchors never profile.
const BATCHES: [usize; 6] = [1, 2, 3, 4, 6, 8];

fn base_job() -> TrainJobSpec {
    TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 1).with_iterations(2)
}

fn job_at(base: &TrainJobSpec, batch: usize) -> TrainJobSpec {
    let mut spec = base.clone();
    spec.batch = batch;
    spec
}

/// The sequential ground truth for one sweep cell: a fresh per-device
/// `Estimator` over a fresh profile run.
fn sequential_cell(spec: &TrainJobSpec, device: GpuDevice) -> Estimate {
    Estimator::new(EstimatorConfig::for_device(device))
        .estimate_job(spec)
        .expect("sequential estimate succeeds")
}

/// A pair of services over the same fleet: one with the incremental
/// sweep (the default), one with it forced off.
fn service_pair(fleet: &[(&str, GpuDevice)]) -> (EstimationService, EstimationService) {
    let build = |incremental: bool| {
        let registry = DeviceRegistry::empty();
        for &(name, device) in fleet {
            registry.register(name, device);
        }
        EstimationService::new(
            ServiceConfig::for_device(GpuDevice::rtx3060())
                .with_registry(registry)
                .with_incremental_sweep(incremental),
        )
    };
    (build(true), build(false))
}

#[test]
fn incremental_sweep_is_bit_identical_to_the_sequential_estimator() {
    let base = base_job();
    let service = EstimationService::for_device(GpuDevice::rtx3060());
    let cells = service.sweep(&base, &BATCHES);

    assert_eq!(cells.len(), BATCHES.len());
    for (batch, estimate) in &cells {
        let estimate = estimate.as_ref().expect("sweep cells estimate");
        assert_eq!(
            estimate,
            &sequential_cell(&job_at(&base, *batch), GpuDevice::rtx3060()),
            "sweep cell at batch {batch} diverged from the sequential path"
        );
    }

    // The incremental contract, straight from the counters: three anchor
    // profiles, one parameterized fit, every cell derived from it.
    assert_eq!(service.profile_runs(), 3, "a sweep profiles 3 anchors");
    let sims = service.sim_stats();
    assert_eq!(sims.param_replays, 1, "one fit per sweep family");
    assert_eq!(sims.incremental_cells, BATCHES.len() as u64);
    assert_eq!(sims.full_replays, 0);
    assert_eq!(
        sims.fast_path_hits + sims.full_replays + sims.incremental_cells,
        sims.sim_runs,
        "the replay-strategy split must be exact and exhaustive"
    );
}

#[test]
fn repeated_sweeps_reuse_one_parameterized_fit() {
    let base = base_job();
    let service = EstimationService::for_device(GpuDevice::rtx3060());
    let first = service.sweep(&base, &BATCHES);
    let second = service.sweep(&base, &BATCHES);
    assert_eq!(first.len(), second.len());
    for ((b1, e1), (b2, e2)) in first.iter().zip(&second) {
        assert_eq!(b1, b2);
        assert_eq!(e1.as_ref().unwrap(), e2.as_ref().unwrap());
    }
    // A narrower re-sweep inside the fitted range reuses the same fit.
    service.sweep(&base, &[2, 3, 4, 6]);
    assert_eq!(service.profile_runs(), 3, "anchors profile once");
    assert_eq!(service.sim_stats().param_replays, 1, "the fit is cached");
}

#[test]
fn sweep_matrix_is_identical_across_roomy_and_pressured_devices() {
    // One roomy column (derived from an unbounded buffer replay) and two
    // pressured columns (bounded replays of the same materialized
    // buffer), byte-granular capacities.
    let fleet = [
        ("roomy", GpuDevice::a100_40g()),
        (
            "tiny",
            GpuDevice {
                name: "sweep-tiny",
                capacity: (1 << 30) + 777_777,
                framework_bytes: 512 << 20,
                init_bytes: 0,
            },
        ),
        (
            "cramped",
            GpuDevice {
                name: "sweep-cramped",
                capacity: (2 << 30) + 55_555,
                framework_bytes: 529 << 20,
                init_bytes: 128 << 20,
            },
        ),
    ];
    let base = base_job();
    let names: Vec<&str> = fleet.iter().map(|&(name, _)| name).collect();
    let (incremental, full) = service_pair(&fleet);

    let inc_matrix = incremental
        .sweep_matrix(&base, &BATCHES, &names)
        .expect("names resolve");
    let full_matrix = full
        .sweep_matrix(&base, &BATCHES, &names)
        .expect("names resolve");
    assert_eq!(
        inc_matrix, full_matrix,
        "incremental sweep matrix diverged from per-batch profiling"
    );

    // Cell-level anchor against the sequential estimator.
    for (row, &batch) in inc_matrix.rows.iter().zip(&BATCHES) {
        let spec = job_at(&base, batch);
        assert_eq!(row.spec, spec, "rows keep the swept batch order");
        for &(name, device) in &fleet {
            assert_eq!(
                row.cell(name).expect("cell").estimate.as_ref().unwrap(),
                &sequential_cell(&spec, device),
                "cell (batch {batch}, {name}) diverged from the sequential estimator"
            );
        }
    }

    // Counters: the incremental service profiled only the anchors; the
    // forced-off service profiled every batch.
    assert_eq!(incremental.profile_runs(), 3);
    assert_eq!(full.profile_runs(), BATCHES.len() as u64);
    let sims = incremental.sim_stats();
    assert_eq!(sims.param_replays, 1);
    assert_eq!(sims.incremental_cells, (BATCHES.len() * fleet.len()) as u64);
    assert_eq!(
        sims.fast_path_hits + sims.full_replays + sims.incremental_cells,
        sims.sim_runs
    );
}

#[test]
fn pseudo_random_fleets_agree_across_sweep_strategies() {
    // Deterministic xorshift over capacities/overheads: many oddly sized
    // fleets, no external RNG dependency in the root test crate.
    const NAMES: [&str; 3] = ["rand-0", "rand-1", "rand-2"];
    let mut state = 0xA076_1D64_78BD_642Fu64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let base = base_job();
    for _round in 0..3 {
        let fleet: Vec<(&str, GpuDevice)> = NAMES
            .iter()
            .map(|&name| {
                (
                    name,
                    GpuDevice {
                        name: "sweep-rand",
                        // 1.4 GB .. ~18 GB, byte-granular.
                        capacity: 1_400_000_000 + next() % 17_000_000_000,
                        framework_bytes: 500_000_000 + next() % 90_000_000,
                        init_bytes: next() % 130_000_000,
                    },
                )
            })
            .collect();
        let names: Vec<&str> = fleet.iter().map(|&(name, _)| name).collect();
        let (incremental, full) = service_pair(&fleet);
        assert_eq!(
            incremental
                .sweep_matrix(&base, &BATCHES, &names)
                .expect("names resolve"),
            full.sweep_matrix(&base, &BATCHES, &names)
                .expect("names resolve"),
            "sweep strategies diverged on a pseudo-random fleet"
        );
        assert_eq!(incremental.profile_runs(), 3);
        assert_eq!(full.profile_runs(), BATCHES.len() as u64);
    }
}

#[test]
fn admission_bisection_agrees_across_sweep_strategies() {
    // The admission answer must be strategy-independent on a device the
    // model actually pressures (the bisection brackets an interior OOM
    // boundary, so probes mix fitting and OOMing batches).
    let base = TrainJobSpec::new(ModelId::DistilGpt2, OptimizerKind::AdamW, 1).with_iterations(2);
    let (incremental, full) = service_pair(&[]);
    let device = GpuDevice::rtx4060();
    let inc_answer = incremental
        .max_batch_for_device(&base, device, 1, 32)
        .expect("estimates");
    let full_answer = full
        .max_batch_for_device(&base, device, 1, 32)
        .expect("estimates");
    assert_eq!(inc_answer, full_answer, "admission-control answer diverged");
    assert_eq!(
        incremental.profile_runs(),
        3,
        "incremental admission profiles exactly the 3 anchors, however many batches the bisection probes"
    );
    let sims = incremental.sim_stats();
    assert_eq!(sims.param_replays, 1);
    assert_eq!(sims.full_replays, 0);
    assert_eq!(
        sims.fast_path_hits + sims.full_replays + sims.incremental_cells,
        sims.sim_runs
    );
}

#[test]
fn ineligible_configs_produce_identical_cells_via_full_replay() {
    // A timeline-recording estimator cannot use the parameterized path
    // (the fit has no per-op timeline); the sweep must silently fall
    // back and still agree cell-for-cell with the default service.
    let base = base_job();
    let mut config = ServiceConfig::for_device(GpuDevice::rtx3060());
    config.estimator.record_timeline = true;
    let timeline = EstimationService::new(config);
    let cells = timeline.sweep(&base, &BATCHES);
    assert_eq!(timeline.sim_stats().param_replays, 0, "gate must reject");
    assert_eq!(timeline.sim_stats().incremental_cells, 0);

    let default = EstimationService::for_device(GpuDevice::rtx3060());
    let default_cells = default.sweep(&base, &BATCHES);
    for ((b1, e1), (b2, e2)) in cells.iter().zip(&default_cells) {
        assert_eq!(b1, b2);
        let (e1, e2) = (e1.as_ref().unwrap(), e2.as_ref().unwrap());
        assert_eq!(e1.peak_bytes, e2.peak_bytes, "batch {b1}");
        assert_eq!(e1.oom_predicted, e2.oom_predicted, "batch {b1}");
    }
}
