//! Crash/power-loss simulation matrix for the persistence layer.
//!
//! Each test populates a state directory through a live service, then
//! simulates a kill at one of the persistence write sites — mid-journal
//! append (the journal tail is truncated at every byte offset of its
//! last records), mid-snapshot (a partial temp file next to the previous
//! snapshot), between the temp-file write and the rename (a complete but
//! un-renamed temp file), and between the rename and the journal
//! truncate (a stale journal duplicating snapshot contents) — and
//! asserts that recovery lands on a checksum-valid consistent prefix:
//! boot never errors, recovered entries serve bit-identical estimates,
//! and the warm boot performs **zero** profile runs for recovered jobs.

use std::fs;
use std::path::{Path, PathBuf};
use xmem::prelude::*;
use xmem::service::{ServiceConfig, JOURNAL_FILE, SNAPSHOT_FILE, SNAPSHOT_TMP_FILE};

/// A unique, self-cleaning state directory per test.
struct StateDir(PathBuf);

impl StateDir {
    fn new(label: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("xmem-crash-{label}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        StateDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for StateDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn config(dir: &Path) -> ServiceConfig {
    ServiceConfig::for_device(GpuDevice::rtx3060()).with_state_dir(dir)
}

fn spec(batch: usize) -> TrainJobSpec {
    TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, batch).with_iterations(2)
}

/// Populates a fresh service on `dir` and returns the expected
/// estimates. Uses both the primary-device path (`estimate`) and a
/// named-device path (`estimate_on`) so all three record kinds — stage,
/// replay, sim cell — hit the journal.
fn populate(dir: &Path, batches: &[usize]) -> Vec<Estimate> {
    let service = EstimationService::new(config(dir));
    assert!(service.persist_stats().enabled, "persistence must engage");
    batches
        .iter()
        .map(|&b| {
            let job = spec(b);
            let on_device = service.estimate_on(&job, "rtx4060").expect("estimates");
            let primary = service.estimate(&job).expect("estimates");
            assert!(on_device.peak_bytes > 0);
            primary
        })
        .collect()
}

/// Warm-boots from `dir` and asserts the recovered state serves
/// `expected` bit-identically with zero profile runs.
fn assert_warm_boot(dir: &Path, batches: &[usize], expected: &[Estimate]) {
    let service = EstimationService::new(config(dir));
    let stats = service.persist_stats();
    assert!(stats.recovered_entries > 0, "nothing recovered: {stats:?}");
    for (&b, want) in batches.iter().zip(expected) {
        let got = service.estimate(&spec(b)).expect("warm estimate");
        assert_eq!(&got, want, "batch {b} diverged after warm boot");
    }
    assert_eq!(
        service.profile_runs(),
        0,
        "warm boot must not re-profile recovered jobs"
    );
}

/// The baseline contract: populate, restart, serve bit-identically with
/// zero profile runs — first via the boot snapshot (compaction ran), and
/// again after a second restart (snapshot-only recovery).
#[test]
fn warm_boot_serves_bit_identical_estimates_with_zero_profile_runs() {
    let dir = StateDir::new("warm");
    let batches = [4usize, 8, 16];
    let expected = populate(dir.path(), &batches);
    assert_warm_boot(dir.path(), &batches, &expected);
    // Once more: the second boot recovered from the first boot's
    // compaction snapshot; its own compaction must round-trip too.
    assert_warm_boot(dir.path(), &batches, &expected);
}

/// Journal-only recovery: kill before any snapshot ever completes (the
/// snapshot file is removed, as if the process died before the first
/// compaction). The journal alone must warm the boot.
#[test]
fn journal_alone_recovers_when_no_snapshot_was_ever_written() {
    let dir = StateDir::new("journal-only");
    let batches = [4usize, 8];
    let expected = populate(dir.path(), &batches);
    fs::remove_file(dir.path().join(SNAPSHOT_FILE)).expect("drop the snapshot");
    assert_warm_boot(dir.path(), &batches, &expected);
}

/// Kill mid-journal-append: the journal is truncated at a matrix of
/// offsets covering every structural position inside every frame —
/// inside the length field, inside the checksum, at the payload's first
/// and last byte, mid-payload, and exactly on each frame boundary.
/// Recovery must never error, must land on the longest checksum-valid
/// prefix (flagging torn cuts, not clean ones), and jobs whose records
/// survived in full serve bit-identically.
#[test]
fn every_journal_truncation_point_recovers_to_a_valid_prefix() {
    let dir = StateDir::new("torn-journal");
    let batches = [4usize];
    let expected = populate(dir.path(), &batches);
    let journal = fs::read(dir.path().join(JOURNAL_FILE)).expect("journal exists");
    assert!(!journal.is_empty(), "populate must have journaled inserts");

    // Frame boundaries, from the length fields.
    let mut boundaries = vec![0usize];
    let mut off = 0usize;
    while off + 12 <= journal.len() {
        let len = u32::from_le_bytes(journal[off..off + 4].try_into().expect("4 bytes")) as usize;
        off += 12 + len;
        boundaries.push(off);
    }
    assert!(boundaries.len() > 2, "expected several journal frames");
    assert_eq!(*boundaries.last().expect("nonempty"), journal.len());

    // Kill points per frame: torn length, torn checksum, payload start,
    // mid-payload, one byte short, and the clean boundary itself.
    let mut cuts = Vec::new();
    for pair in boundaries.windows(2) {
        let (start, end) = (pair[0], pair[1]);
        cuts.extend([
            start + 2,
            start + 8,
            start + 13,
            (start + end) / 2,
            end - 1,
            end,
        ]);
    }
    cuts.sort_unstable();
    cuts.dedup();

    for cut in cuts {
        let scratch = StateDir::new(&format!("torn-journal-cut{cut}"));
        fs::create_dir_all(scratch.path()).expect("scratch dir");
        fs::write(scratch.path().join(JOURNAL_FILE), &journal[..cut]).expect("torn journal");

        let service = EstimationService::new(config(scratch.path()));
        let stats = service.persist_stats();
        let clean_boundary = boundaries.contains(&cut);
        assert_eq!(
            stats.recovery_truncated > 0,
            !clean_boundary,
            "cut {cut}: torn-tail detection disagrees with the cut class: {stats:?}"
        );
        for (&b, want) in batches.iter().zip(&expected) {
            let before = service.profile_runs();
            let got = service
                .estimate(&spec(b))
                .expect("estimate after torn boot");
            if service.profile_runs() == before {
                // Served from recovered state: must be bit-identical.
                assert_eq!(&got, want, "cut {cut}: recovered entry diverged");
            }
        }
        // The boot compaction must have produced a checksum-valid
        // snapshot from the recovered prefix: a second boot re-reads it
        // without tripping the truncation counter.
        let reboot = EstimationService::new(config(scratch.path()));
        assert_eq!(
            reboot.persist_stats().recovery_truncated,
            0,
            "cut {cut}: compacted snapshot must be checksum-valid"
        );
    }
}

/// A flipped byte mid-journal fails that record's checksum and ends
/// replay at the previous record — a consistent prefix, not an error.
#[test]
fn corrupt_journal_record_ends_replay_at_the_valid_prefix() {
    let dir = StateDir::new("bitflip");
    let batches = [4usize, 8];
    let _expected = populate(dir.path(), &batches);
    fs::remove_file(dir.path().join(SNAPSHOT_FILE)).expect("drop the snapshot");
    let mut journal = fs::read(dir.path().join(JOURNAL_FILE)).expect("journal");
    let mid = journal.len() / 2;
    journal[mid] ^= 0xff;
    fs::write(dir.path().join(JOURNAL_FILE), &journal).expect("corrupt journal");

    let service = EstimationService::new(config(dir.path()));
    let stats = service.persist_stats();
    assert!(
        stats.recovery_truncated > 0,
        "the corrupt record must be detected: {stats:?}"
    );
    // The service still boots and still serves (re-profiling what the
    // corruption cost it).
    let estimate = service
        .estimate(&spec(4))
        .expect("post-corruption estimate");
    assert!(estimate.peak_bytes > 0);
}

/// Kill mid-snapshot: a partial temp file sits next to the previous
/// (complete) snapshot. The temp file must be ignored, the old snapshot
/// and journal must recover, and the next snapshot must overwrite the
/// leftover temp file.
#[test]
fn partial_snapshot_temp_file_is_ignored() {
    let dir = StateDir::new("mid-snapshot");
    let batches = [4usize];
    let expected = populate(dir.path(), &batches);
    // Simulate dying halfway through writing the temp file.
    let snapshot = fs::read(dir.path().join(SNAPSHOT_FILE)).expect("snapshot");
    fs::write(
        dir.path().join(SNAPSHOT_TMP_FILE),
        &snapshot[..snapshot.len() / 2],
    )
    .expect("partial temp");
    assert_warm_boot(dir.path(), &batches, &expected);
    // The boot compaction rewrote the snapshot through the same temp
    // path; the leftover partial file is gone.
    assert!(
        !dir.path().join(SNAPSHOT_TMP_FILE).exists(),
        "compaction must clear the stale temp file"
    );
}

/// Kill between the temp-file write and the rename: a *complete* temp
/// file next to the previous snapshot. Same contract — the un-renamed
/// file is simply not state.
#[test]
fn complete_but_unrenamed_snapshot_temp_file_is_ignored() {
    let dir = StateDir::new("pre-rename");
    let batches = [4usize];
    let expected = populate(dir.path(), &batches);
    let snapshot = fs::read(dir.path().join(SNAPSHOT_FILE)).expect("snapshot");
    fs::write(dir.path().join(SNAPSHOT_TMP_FILE), &snapshot).expect("complete temp");
    assert_warm_boot(dir.path(), &batches, &expected);
}

/// Kill between the snapshot rename and the journal truncate: the
/// journal still holds records the snapshot already contains. Replay is
/// idempotent (values are deterministic), so the double-apply changes
/// nothing.
#[test]
fn stale_journal_after_snapshot_rename_replays_idempotently() {
    let dir = StateDir::new("rename-vs-truncate");
    let batches = [4usize, 8];
    let expected = populate(dir.path(), &batches);
    // An intermediate boot compacts: the snapshot now carries the state
    // and the journal is empty.
    drop(EstimationService::new(config(dir.path())));
    // Reconstruct the pre-truncate state: append the snapshot's record
    // frames (sans header) onto the journal, duplicating every entry.
    let snapshot = fs::read(dir.path().join(SNAPSHOT_FILE)).expect("snapshot");
    // Skip the header frame: [4-byte len][8-byte sum][payload].
    let header_len = u32::from_le_bytes(snapshot[..4].try_into().expect("4 bytes")) as usize + 12;
    assert!(
        snapshot.len() > header_len,
        "compacted snapshot must carry data frames"
    );
    let mut journal = fs::read(dir.path().join(JOURNAL_FILE)).expect("journal");
    journal.extend_from_slice(&snapshot[header_len..]);
    fs::write(dir.path().join(JOURNAL_FILE), &journal).expect("stale journal");
    assert_warm_boot(dir.path(), &batches, &expected);
}

/// A corrupt snapshot *header* discards the snapshot wholesale but the
/// journal still replays — recovery degrades, never errors.
#[test]
fn corrupt_snapshot_header_falls_back_to_the_journal() {
    let dir = StateDir::new("bad-header");
    let batches = [4usize];
    let expected = populate(dir.path(), &batches);
    // After `populate` the journal holds every insert (the boot
    // compaction preceded them); damaging the snapshot's header frame
    // must discard the snapshot but leave the journal replayable.
    let mut corrupted = fs::read(dir.path().join(SNAPSHOT_FILE)).expect("snapshot");
    corrupted[14] ^= 0xff; // inside the header payload
    fs::write(dir.path().join(SNAPSHOT_FILE), &corrupted).expect("corrupt snapshot");

    let service = EstimationService::new(config(dir.path()));
    let stats = service.persist_stats();
    assert!(
        stats.recovery_truncated > 0,
        "header damage detected: {stats:?}"
    );
    assert!(
        stats.recovered_entries > 0,
        "journal still recovered: {stats:?}"
    );
    for (&b, want) in batches.iter().zip(&expected) {
        let got = service.estimate(&spec(b)).expect("estimate");
        assert_eq!(&got, want, "journal-recovered entry diverged");
    }
    assert_eq!(service.profile_runs(), 0);
}

/// Downgrade tolerance: a reader that predates the `Param` record kind
/// (PR 7's parameterized sweep fits) stops replay at the first record it
/// cannot decode. For that prefix to carry the whole pre-`Param` state,
/// snapshots must export every Stage/Replay/Sim record *before* any
/// `Param` record — this test pins that export-order claim structurally
/// (no `Stage`/`Replay`/`Sim` frame after the first `Param` frame) and
/// behaviourally (a snapshot truncated at the first `Param` frame still
/// warm-boots every estimate bit-identically with zero profile runs).
#[test]
fn reader_without_param_support_still_recovers_all_stage_replay_sim_entries() {
    let dir = StateDir::new("downgrade");
    let batches = [4usize, 8];
    let expected = populate(dir.path(), &batches);
    // Produce a Param record: an incremental-eligible sweep spanning
    // enough distinct points to pay the three-anchor fit.
    {
        let service = EstimationService::new(config(dir.path()));
        for (_, outcome) in service.sweep(&spec(1), &[1, 2, 4, 8, 16]) {
            outcome.expect("sweep estimates");
        }
    }
    // One more boot compacts everything into the snapshot.
    drop(EstimationService::new(config(dir.path())));

    // Walk the snapshot frames ([4-byte len][8-byte sum][JSON]) and tag
    // each record by its externally-tagged enum variant; frame 0 is the
    // version header.
    let snapshot = fs::read(dir.path().join(SNAPSHOT_FILE)).expect("snapshot");
    let mut frames: Vec<(usize, String)> = Vec::new(); // (start offset, variant)
    let mut off = 0usize;
    while off + 12 <= snapshot.len() {
        let len = u32::from_le_bytes(snapshot[off..off + 4].try_into().expect("4 bytes")) as usize;
        let payload = std::str::from_utf8(&snapshot[off + 12..off + 12 + len])
            .expect("frame payload is JSON text");
        if off > 0 {
            let value: serde::Value = serde_json::from_str(payload).expect("frame decodes");
            let variant = value
                .as_object()
                .and_then(|entries| entries.first())
                .map(|(tag, _)| tag.clone())
                .expect("record frames are single-variant objects");
            frames.push((off, variant));
        }
        off += 12 + len;
    }
    assert_eq!(off, snapshot.len(), "snapshot must be whole frames");

    let first_param = frames
        .iter()
        .find(|(_, variant)| variant == "Param")
        .map(|&(start, _)| start)
        .expect("the sweep must have produced a Param record");
    let mut pre_param = 0usize;
    for (start, variant) in &frames {
        if matches!(variant.as_str(), "Stage" | "Replay" | "Sim") {
            assert!(
                *start < first_param,
                "a {variant} record after the first Param breaks downgrade tolerance"
            );
            pre_param += 1;
        }
    }
    assert!(pre_param > 0, "snapshot must carry pre-Param records");

    // The old reader's effective state is exactly this prefix: boot from
    // it and the full pre-Param contract must hold.
    let scratch = StateDir::new("downgrade-prefix");
    fs::create_dir_all(scratch.path()).expect("scratch dir");
    fs::write(scratch.path().join(SNAPSHOT_FILE), &snapshot[..first_param])
        .expect("prefix snapshot");
    assert_warm_boot(scratch.path(), &batches, &expected);
}

/// FNV-1a 64-bit — the persistence layer's frame checksum, duplicated
/// here to hand-craft journal frames.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325_u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Frames `payload` as `[u32 len LE][u64 FNV-1a LE][payload]`.
fn push_frame(out: &mut Vec<u8>, payload: &[u8]) {
    let len = u32::try_from(payload.len()).expect("payload fits a frame");
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Walks a framed state file, returning `(start offset, variant tag)` per
/// record frame (frame 0, the version header, is skipped).
fn record_frames(data: &[u8]) -> Vec<(usize, String)> {
    let mut frames = Vec::new();
    let mut off = 0usize;
    while off + 12 <= data.len() {
        let len = u32::from_le_bytes(data[off..off + 4].try_into().expect("4 bytes")) as usize;
        let payload =
            std::str::from_utf8(&data[off + 12..off + 12 + len]).expect("frame payload is JSON");
        if off > 0 {
            let value: serde::Value = serde_json::from_str(payload).expect("frame decodes");
            let variant = value
                .as_object()
                .and_then(|entries| entries.first())
                .map(|(tag, _)| tag.clone())
                .expect("record frames are single-variant objects");
            frames.push((off, variant));
        }
        off += 12 + len;
    }
    assert_eq!(off, data.len(), "state file must be whole frames");
    frames
}

/// The adaptive tuner's learned split survives restarts: a `Tuner`
/// journal record (as a long-lived process would have written at its last
/// snapshot) is applied at boot, visible through the tier stats, and
/// re-exported bit-exactly by the boot compaction — *after* every other
/// record kind, so binaries that predate the variant still recover the
/// whole cache-state prefix.
#[test]
fn warm_boot_resumes_the_learned_tuner_split_and_exports_it_last() {
    let dir = StateDir::new("tuner");
    let batches = [4usize, 8];
    let expected = populate(dir.path(), &batches);

    // Hand-craft the learned state: a 25% protected split after three
    // sketch decays. Appending the frame directly (rather than churning
    // the cache until the tuner drifts) keeps the fixture exact.
    let mut frame = Vec::new();
    push_frame(
        &mut frame,
        br#"{"Tuner":{"cache":"stage","frac_permille":250,"decay_epoch":3}}"#,
    );
    let mut journal = fs::read(dir.path().join(JOURNAL_FILE)).expect("journal");
    journal.extend_from_slice(&frame);
    fs::write(dir.path().join(JOURNAL_FILE), &journal).expect("journal with tuner record");

    // The warm boot resumes the learned split.
    let service = EstimationService::new(config(dir.path()));
    let tier = service.stage_tier_stats();
    assert!(tier.adaptive, "the default service tier is adaptive");
    assert_eq!(
        tier.protected_frac_permille, 250,
        "warm boot must resume the learned fraction"
    );
    drop(service);

    // The boot compaction re-exported it: integers only, bit-exact, and
    // strictly after every Stage/Replay/Sim/Param frame.
    let snapshot = fs::read(dir.path().join(SNAPSHOT_FILE)).expect("snapshot");
    let frames = record_frames(&snapshot);
    let first_tuner = frames
        .iter()
        .find(|(_, variant)| variant == "Tuner")
        .map(|&(start, _)| start)
        .expect("adaptive caches must export tuner records");
    for (start, variant) in &frames {
        assert!(
            variant == "Tuner" || *start < first_tuner,
            "a {variant} record after the first Tuner breaks downgrade tolerance"
        );
    }
    let stage_tuner = frames
        .iter()
        .filter(|(_, variant)| variant == "Tuner")
        .map(|&(start, _)| {
            let len = u32::from_le_bytes(snapshot[start..start + 4].try_into().expect("4 bytes"))
                as usize;
            std::str::from_utf8(&snapshot[start + 12..start + 12 + len]).expect("JSON")
        })
        .find(|payload| payload.contains("\"stage\""))
        .expect("a stage tuner record");
    assert!(
        stage_tuner.contains("\"frac_permille\":250") && stage_tuner.contains("\"decay_epoch\":3"),
        "learned state must round-trip bit-exactly, got {stage_tuner}"
    );

    // A reader that predates `Tuner` effectively boots from the prefix
    // before the first Tuner frame: the whole cache state must still
    // recover (it only loses the learned split).
    let scratch = StateDir::new("tuner-prefix");
    fs::create_dir_all(scratch.path()).expect("scratch dir");
    fs::write(scratch.path().join(SNAPSHOT_FILE), &snapshot[..first_tuner])
        .expect("prefix snapshot");
    assert_warm_boot(scratch.path(), &batches, &expected);
}

/// Tuner records for cache tiers this binary does not recognize are
/// skipped (counted), exactly like orphaned sim cells — a name from a
/// future version must not poison boot.
#[test]
fn tuner_records_for_unknown_tiers_are_skipped() {
    let dir = StateDir::new("tuner-unknown");
    let batches = [4usize];
    let expected = populate(dir.path(), &batches);
    let mut frame = Vec::new();
    push_frame(
        &mut frame,
        br#"{"Tuner":{"cache":"negative","frac_permille":700,"decay_epoch":1}}"#,
    );
    let mut journal = fs::read(dir.path().join(JOURNAL_FILE)).expect("journal");
    journal.extend_from_slice(&frame);
    fs::write(dir.path().join(JOURNAL_FILE), &journal).expect("journal with unknown tier");

    let service = EstimationService::new(config(dir.path()));
    let stats = service.persist_stats();
    assert!(
        stats.recovery_skipped > 0,
        "unknown tier names must be counted, not fatal: {stats:?}"
    );
    assert_eq!(
        service.stage_tier_stats().protected_frac_permille,
        500,
        "no known tier may have absorbed the unknown record"
    );
    for (&b, want) in batches.iter().zip(&expected) {
        let got = service.estimate(&spec(b)).expect("warm estimate");
        assert_eq!(&got, want);
    }
    assert_eq!(service.profile_runs(), 0);
}

/// Sim cells whose device fingerprint matches no registered device are
/// skipped (counted), not resurrected against the wrong hardware.
#[test]
fn sim_cells_for_unregistered_devices_are_skipped() {
    let dir = StateDir::new("unmatched-device");
    let batches = [4usize];
    let _ = populate(dir.path(), &batches);
    // Reboot with a registry that no longer knows any named device: the
    // rtx4060 sim cells (written via `estimate_on`) match neither the
    // empty registry nor the rtx3060 primary, so they are orphaned.
    let service = EstimationService::new(
        ServiceConfig::for_device(GpuDevice::rtx3060())
            .with_registry(xmem::service::DeviceRegistry::empty())
            .with_state_dir(dir.path()),
    );
    let stats = service.persist_stats();
    assert!(
        stats.recovery_skipped > 0,
        "orphaned sim cells must be counted: {stats:?}"
    );
    // Stage + replay records are device-independent and still recover.
    assert!(stats.recovered_entries > 0, "{stats:?}");
    assert_eq!(service.profile_runs(), 0);
    let _ = service.estimate(&spec(4)).expect("warm estimate");
    // The analysis was recovered, so serving still pays no profile run.
    assert_eq!(service.profile_runs(), 0);
}
