//! End-to-end tests of the HTTP serving front end over real loopback
//! sockets: concurrent keep-alive clients must receive responses
//! **byte-identical** to rendering direct service results, graceful
//! shutdown must drain in-flight requests without dropping any, and
//! adversarial wire input must produce clean error responses — never a
//! dead worker.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use xmem::prelude::*;
use xmem::server::{api, HttpClient, ServerConfig, ServerHandle, WireLimits};
use xmem::service::jobspec::job_to_value;
use xmem::service::AsyncServiceConfig;

fn start_server(config: ServerConfig) -> (ServerHandle, Arc<AsyncEstimationService>) {
    let service = Arc::new(AsyncEstimationService::new(AsyncServiceConfig::for_device(
        GpuDevice::rtx3060(),
    )));
    let server =
        ServerHandle::bind("127.0.0.1:0", Arc::clone(&service), config).expect("bind loopback");
    (server, service)
}

fn job_json(spec: &TrainJobSpec) -> String {
    serde_json::to_string(&job_to_value(spec)).expect("job renders")
}

fn small_spec(batch: usize) -> TrainJobSpec {
    TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, batch).with_iterations(2)
}

/// ≥32 concurrent keep-alive connections hammering the estimate,
/// named-device and placement routes: every response body must be
/// byte-identical to rendering the equivalent direct service call.
#[test]
fn concurrent_keep_alive_clients_get_bit_identical_answers() {
    const CLIENTS: usize = 32;
    const ROUNDS: usize = 6;
    let (server, _service) = start_server(ServerConfig::default().with_workers(CLIENTS + 4));
    let addr = server.local_addr();

    // The expected bodies, computed through a *separate* service — the
    // pipeline is deterministic, so an independent instance must agree
    // byte-for-byte with what travels the wire.
    let direct = EstimationService::for_device(GpuDevice::rtx3060());
    let jobs = [small_spec(4), small_spec(8), small_spec(16)];
    let mut expected: Vec<(String, String, String)> = Vec::new(); // (path, body, expected)
    for job in &jobs {
        expected.push((
            "/v1/estimate".to_string(),
            job_json(job),
            api::estimate_body(&direct.estimate(job).expect("estimates")),
        ));
        expected.push((
            "/v1/estimate".to_string(),
            format!("{{\"job\":{},\"device\":\"rtx4060\"}}", job_json(job)),
            api::estimate_body(&direct.estimate_on(job, "rtx4060").expect("estimates")),
        ));
        expected.push((
            "/v1/best-device".to_string(),
            job_json(job),
            api::placement_body(direct.best_device_for_job(job).expect("places").as_ref()),
        ));
    }
    let expected = Arc::new(expected);

    let exchanges = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for client_index in 0..CLIENTS {
            let expected = Arc::clone(&expected);
            let exchanges = &exchanges;
            scope.spawn(move || {
                let mut client = HttpClient::connect(addr).expect("connect");
                for round in 0..ROUNDS {
                    // Each client walks the case list from its own offset,
                    // so at any instant the server sees a mix of routes.
                    let (path, body, want) = &expected[(client_index + round) % expected.len()];
                    let response = client.post_json(path, body).expect("keep-alive exchange");
                    assert_eq!(response.status, 200, "{path}: {}", response.text());
                    assert_eq!(
                        response.text(),
                        want.as_str(),
                        "{path} diverged from the direct path"
                    );
                    exchanges.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(exchanges.load(Ordering::Relaxed), CLIENTS * ROUNDS);
    // Keep-alive held: every client used exactly one connection.
    assert_eq!(server.metrics().requests_total(), (CLIENTS * ROUNDS) as u64);
    let report = server.shutdown();
    assert!(report.clean);
}

/// A whole device matrix over the wire is byte-identical to rendering
/// `estimate_matrix` directly.
#[test]
fn matrix_and_sweep_responses_match_direct_rendering() {
    let (server, service) = start_server(ServerConfig::default());
    let mut client = HttpClient::connect(server.local_addr()).expect("connect");

    let jobs = [small_spec(4), small_spec(8)];
    let body = format!(
        "{{\"jobs\":[{},{}],\"devices\":[\"rtx3060\",\"a100\"]}}",
        job_json(&jobs[0]),
        job_json(&jobs[1])
    );
    let response = client.post_json("/v1/matrix", &body).expect("matrix");
    assert_eq!(response.status, 200);
    let direct = service
        .service()
        .estimate_matrix(&jobs, &["rtx3060", "a100"])
        .expect("direct matrix");
    assert_eq!(response.text(), api::matrix_body(&direct));

    let sweep_request = format!(
        "{{\"job\":{},\"batches\":[1,2,4]}}",
        job_json(&small_spec(1))
    );
    let response = client
        .post_json("/v1/sweep", &sweep_request)
        .expect("sweep");
    assert_eq!(response.status, 200);
    let direct_sweep = service.service().sweep(&small_spec(1), &[1, 2, 4]);
    assert_eq!(response.text(), api::sweep_body(&direct_sweep));

    let report = server.shutdown();
    assert!(report.clean);
}

/// Grid-driven routes (`/v1/sweep`, `/v1/plan`) supply their own batch
/// sizes, so the job object may omit `batch` — the grammar shared with
/// the CLI (docs/JOBSPEC.md). The answers must match jobs spelled with
/// an explicit batch.
#[test]
fn grid_routes_accept_jobs_without_a_batch_field() {
    let (server, service) = start_server(ServerConfig::default());
    let mut client = HttpClient::connect(server.local_addr()).expect("connect");

    let batchless = r#"{"model":"MobeNetV3Small","optimizer":"Adam","iterations":2}"#;

    let sweep_request = format!("{{\"job\":{batchless},\"batches\":[1,2,4]}}");
    let response = client
        .post_json("/v1/sweep", &sweep_request)
        .expect("sweep");
    assert_eq!(response.status, 200, "{}", response.text());
    let direct_sweep = service.service().sweep(&small_spec(1), &[1, 2, 4]);
    assert_eq!(response.text(), api::sweep_body(&direct_sweep));

    let plan_request = format!("{{\"job\":{batchless},\"device\":\"rtx3060\",\"max\":64}}");
    let response = client.post_json("/v1/plan", &plan_request).expect("plan");
    assert_eq!(response.status, 200, "{}", response.text());
    let device = service
        .service()
        .registry()
        .get("rtx3060")
        .expect("registered device");
    let direct_plan = service
        .service()
        .max_batch_for_device(&small_spec(1), device, 1, 64)
        .expect("direct plan");
    assert_eq!(response.text(), api::plan_body(direct_plan));

    // Singleton routes still insist on an explicit batch.
    let response = client
        .post_json("/v1/estimate", batchless)
        .expect("estimate");
    assert_eq!(response.status, 400);
    assert!(response.text().contains("`batch` is required"));

    let report = server.shutdown();
    assert!(report.clean);
}

/// Graceful shutdown with requests in flight: every request that was
/// being served when the drain triggered is answered completely (status
/// 200, full body, `connection: close`); nothing is dropped or
/// truncated.
#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    const CLIENTS: usize = 8;
    let (server, service) = start_server(ServerConfig::default().with_workers(CLIENTS + 2));
    let addr = server.local_addr();
    let trigger = Arc::new(std::sync::Barrier::new(CLIENTS + 1));

    let answered = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for i in 0..CLIENTS {
            let trigger = Arc::clone(&trigger);
            let answered = &answered;
            scope.spawn(move || {
                let mut client = HttpClient::connect(addr).expect("connect");
                // Distinct cold batches of a slow-profiling model: each
                // request does tens of milliseconds of real work, so the
                // drain demonstrably overlaps execution.
                let slow = TrainJobSpec::new(ModelId::ResNet101, OptimizerKind::Adam, 24 + i)
                    .with_iterations(2);
                let body = job_json(&slow);
                trigger.wait();
                let response = client
                    .post_json("/v1/estimate", &body)
                    .expect("in-flight request must be answered, not dropped");
                assert_eq!(response.status, 200, "{}", response.text());
                assert!(response.text().contains("peak_bytes"), "truncated body");
                assert_eq!(
                    response.header("connection"),
                    Some("close"),
                    "a drained answer must announce the close"
                );
                answered.fetch_add(1, Ordering::Relaxed);
            });
        }
        trigger.wait();
        // Deterministic overlap: pull the plug as soon as the service is
        // provably mid-profile (the counter increments when a profile
        // run *starts*), while every answer is still tens of
        // milliseconds away.
        let patience = std::time::Instant::now();
        while service.service().profile_runs() == 0 && patience.elapsed() < Duration::from_secs(10)
        {
            std::thread::yield_now();
        }
        assert!(service.service().profile_runs() > 0, "no request started");
        server.trigger_drain();
    });
    assert_eq!(
        answered.load(Ordering::Relaxed),
        CLIENTS,
        "dropped requests"
    );
    let report = server.shutdown();
    assert!(report.clean, "drain must finish within its deadline");
    assert_eq!(report.requests_served, CLIENTS as u64);

    // The drained server is really gone: new connections are refused.
    std::thread::sleep(Duration::from_millis(50));
    let refused = std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(250));
    assert!(
        refused.is_err() || {
            // Some platforms accept then immediately close; either way no
            // service is behind the socket.
            let mut probe = HttpClient::connect(addr).expect("probe connect");
            probe
                .set_read_timeout(Some(Duration::from_millis(500)))
                .unwrap();
            probe.get("/healthz").is_err()
        },
        "the listener must be closed after shutdown"
    );
}

/// Adversarial wire input: every malformed, oversized or truncated
/// request gets a clean error response (or a clean close) and the server
/// keeps serving afterwards — no worker dies.
#[test]
fn adversarial_requests_get_clean_errors_and_no_worker_dies() {
    let limits = WireLimits::default();
    let (server, _service) = start_server(
        ServerConfig::default()
            .with_workers(4)
            .with_limits(limits)
            .with_keep_alive_timeout(Duration::from_secs(2)),
    );
    let addr = server.local_addr();

    // Oversized single header → 431 and close.
    {
        let mut client = HttpClient::connect(addr).expect("connect");
        client
            .send_raw(
                format!(
                    "GET /healthz HTTP/1.1\r\nx-bloat: {}\r\n\r\n",
                    "a".repeat(20_000)
                )
                .as_bytes(),
            )
            .expect("send");
        let response = client.read_response().expect("431 answer");
        assert_eq!(response.status, 431);
        assert!(response.text().contains("\"kind\":\"wire\""));
    }
    // Head that never terminates → 431 once the limit trips.
    {
        let mut client = HttpClient::connect(addr).expect("connect");
        client.send_raw(b"GET / HTTP/1.1\r\n").expect("send");
        client
            .send_raw("x: y\r\n".repeat(4000).as_bytes())
            .expect("send");
        let response = client.read_response().expect("431 answer");
        assert_eq!(response.status, 431);
    }
    // Huge declared Content-Length → 413 before any body arrives.
    {
        let mut client = HttpClient::connect(addr).expect("connect");
        client
            .send_raw(b"POST /v1/estimate HTTP/1.1\r\ncontent-length: 99999999999\r\n\r\n")
            .expect("send");
        let response = client.read_response().expect("413 answer");
        assert_eq!(response.status, 413);
    }
    // Zero-length body on a JSON route → an app-level 400, and the
    // connection survives (it was a well-formed request).
    {
        let mut client = HttpClient::connect(addr).expect("connect");
        let response = client.post_json("/v1/estimate", "").expect("400 answer");
        assert_eq!(response.status, 400);
        assert!(response.text().contains("bad_request"));
        let again = client.get("/healthz").expect("connection survived the 400");
        assert_eq!(again.status, 200);
    }
    // Truncated body: declare 64 bytes, send 3, half-close. The server
    // must neither hang nor answer garbage; it just closes.
    {
        let mut client = HttpClient::connect(addr).expect("connect");
        client
            .send_raw(b"POST /v1/estimate HTTP/1.1\r\ncontent-length: 64\r\n\r\n{\"m")
            .expect("send");
        client.shutdown_write().expect("half-close");
        client
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        let outcome = client.read_response();
        assert!(outcome.is_err(), "no response can exist for half a request");
    }
    // A valid request pipelined with garbage: the valid one is answered,
    // the garbage gets a 400, then the connection closes.
    {
        let mut client = HttpClient::connect(addr).expect("connect");
        client
            .send_raw(b"GET /healthz HTTP/1.1\r\n\r\n\x13\x37 GARBAGE\x00\r\n\r\n")
            .expect("send");
        let first = client.read_response().expect("healthz answer");
        assert_eq!(first.status, 200);
        let second = client.read_response().expect("400 answer");
        assert_eq!(second.status, 400);
    }
    // Unknown routes and wrong methods are clean JSON errors.
    {
        let mut client = HttpClient::connect(addr).expect("connect");
        let missing = client.get("/nope").expect("404 answer");
        assert_eq!(missing.status, 404);
        let wrong = client.get("/v1/estimate").expect("405 answer");
        assert_eq!(wrong.status, 405);
        // Unknown device is a stable JSON error body.
        let unknown = client
            .post_json(
                "/v1/estimate",
                &format!(
                    "{{\"job\":{},\"device\":\"h9000\"}}",
                    job_json(&small_spec(4))
                ),
            )
            .expect("unknown-device answer");
        assert_eq!(unknown.status, 404);
        assert!(unknown.text().contains("unknown_device"));
    }

    // After all of that abuse: the wire error counter moved, and the
    // server still answers real queries on fresh connections.
    assert!(server.metrics().responses_with_status(431) >= 2);
    assert!(server.metrics().responses_with_status(413) >= 1);
    let mut client = HttpClient::connect(addr).expect("connect");
    let response = client
        .post_json("/v1/estimate", &job_json(&small_spec(4)))
        .expect("post-abuse estimate");
    assert_eq!(response.status, 200);
    let report = server.shutdown();
    assert!(report.clean);
}

/// Per-request deadlines surface as `504` with the stable error body,
/// and backpressure as `503` + `retry-after`.
#[test]
fn deadlines_and_backpressure_map_to_504_and_503() {
    // One async worker and a one-deep queue make overload deterministic.
    let service = Arc::new(AsyncEstimationService::new(
        AsyncServiceConfig::for_device(GpuDevice::rtx3060())
            .with_workers(1)
            .with_queue_depth(1),
    ));
    let server = ServerHandle::bind(
        "127.0.0.1:0",
        Arc::clone(&service),
        ServerConfig::default().with_workers(8),
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    // Deadline: a cold profile takes far longer than 1 ms, so the timer
    // settles the future first.
    let mut client = HttpClient::connect(addr).expect("connect");
    let cold = TrainJobSpec::new(ModelId::DistilGpt2, OptimizerKind::AdamW, 6).with_iterations(2);
    let response = client
        .post_json_with_deadline("/v1/estimate", &job_json(&cold), 1)
        .expect("deadline answer");
    assert_eq!(response.status, 504, "{}", response.text());
    assert!(response.text().contains("deadline_exceeded"));
    // A malformed deadline header is a 400, not a panic.
    let bad = client
        .request(
            "POST",
            "/v1/estimate",
            &[("x-xmem-deadline-ms", "soon")],
            job_json(&small_spec(4)).as_bytes(),
        )
        .expect("bad-deadline answer");
    assert_eq!(bad.status, 400);

    // Backpressure: saturate the single worker + single queue slot with
    // slow cold estimates, then keep pushing until a 503 surfaces.
    let saw_busy = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6)
            .map(|i| {
                scope.spawn(move || {
                    let mut client = HttpClient::connect(addr).expect("connect");
                    let slow =
                        TrainJobSpec::new(ModelId::MobileNetV3Large, OptimizerKind::Adam, 40 + i)
                            .with_iterations(2);
                    let response = client
                        .post_json("/v1/estimate", &job_json(&slow))
                        .expect("overload answer");
                    if response.status == 503 {
                        assert_eq!(
                            response.header("retry-after"),
                            Some("1"),
                            "503 must carry retry-after"
                        );
                        assert!(response.text().contains("busy"));
                        true
                    } else {
                        assert_eq!(response.status, 200, "{}", response.text());
                        false
                    }
                })
            })
            .collect();
        // Join every thread (no short-circuit: each runs its own
        // assertions), then ask whether any saw the 503.
        let outcomes: Vec<bool> = handles
            .into_iter()
            .map(|h| h.join().expect("overload thread"))
            .collect();
        outcomes.into_iter().any(|busy| busy)
    });
    assert!(
        saw_busy,
        "6 concurrent cold estimates against a 1-worker/1-slot service must trip Busy"
    );
    let report = server.shutdown();
    assert!(report.clean);
}

/// The two 503 producers — the acceptor's inline accept-queue-overflow
/// answer and the worker path's submission-queue `Busy` answer — must be
/// **byte-identical** on the wire, and the inline one must participate
/// in the per-status counter and the bytes-written accounting exactly
/// like a worker-written response (the bug this pins: the inline write
/// bypassed `write_response`, so scrapers undercounted rejected load).
#[test]
fn inline_and_worker_path_503s_are_byte_identical() {
    use std::io::{Read, Write};
    let canonical = api::busy_response().to_bytes(false);

    // Worker path: one async worker and a one-deep submission queue.
    // Two slow cold estimates saturate both slots; polling with
    // `connection: close` requests must then surface a 503, captured raw
    // to EOF so the comparison covers every byte on the wire.
    let worker_bytes = {
        let service = Arc::new(AsyncEstimationService::new(
            AsyncServiceConfig::for_device(GpuDevice::rtx3060())
                .with_workers(1)
                .with_queue_depth(1),
        ));
        let server = ServerHandle::bind(
            "127.0.0.1:0",
            Arc::clone(&service),
            ServerConfig::default().with_workers(8),
        )
        .expect("bind loopback");
        let addr = server.local_addr();
        let stop = std::sync::atomic::AtomicBool::new(false);
        let captured = std::thread::scope(|scope| {
            // Two saturator threads keep the single async worker and the
            // one-deep queue occupied with distinct cold profiles until
            // the probe has its 503 in hand.
            for t in 0..2usize {
                let stop = &stop;
                scope.spawn(move || {
                    let mut client = HttpClient::connect(addr).expect("connect saturator");
                    let mut round = 0usize;
                    while !stop.load(Ordering::Relaxed) {
                        let slow = TrainJobSpec::new(
                            ModelId::ResNet101,
                            OptimizerKind::Adam,
                            20 + t * 500 + round,
                        )
                        .with_iterations(2);
                        round += 1;
                        let response = client
                            .post_json("/v1/estimate", &job_json(&slow))
                            .expect("saturator answer");
                        assert!(matches!(response.status, 200 | 503), "{}", response.text());
                    }
                });
            }
            // Make sure a saturator is really executing before probing.
            let patience = std::time::Instant::now();
            while service.service().profile_runs() == 0
                && patience.elapsed() < Duration::from_secs(10)
            {
                std::thread::yield_now();
            }
            let body = job_json(&small_spec(2));
            let request = format!(
                "POST /v1/estimate HTTP/1.1\r\ncontent-type: application/json\r\n\
                 content-length: {}\r\nconnection: close\r\n\r\n{body}",
                body.len()
            );
            let patience = std::time::Instant::now();
            let bytes = loop {
                assert!(
                    patience.elapsed() < Duration::from_secs(30),
                    "no worker-path 503 surfaced against a saturated service"
                );
                let mut stream = std::net::TcpStream::connect(addr).expect("connect probe");
                stream.write_all(request.as_bytes()).expect("send probe");
                let mut bytes = Vec::new();
                stream.read_to_end(&mut bytes).expect("read to close");
                if bytes.starts_with(b"HTTP/1.1 503") {
                    break bytes;
                }
            };
            stop.store(true, Ordering::Relaxed);
            bytes
        });
        assert!(server.metrics().responses_with_status(503) >= 1);
        server.shutdown();
        captured
    };
    assert_eq!(
        worker_bytes, canonical,
        "worker-path 503 must render exactly `busy_response`"
    );

    // Inline path: one connection worker and a one-deep accept queue.
    // An idle connection claims the worker, a second fills the queue,
    // and the third is rejected at accept time — the only bytes this
    // server ever writes, so the accounting is exact.
    let (server, _service) =
        start_server(ServerConfig::default().with_workers(1).with_queue_depth(1));
    let addr = server.local_addr();
    let claim_worker = std::net::TcpStream::connect(addr).expect("connect claimer");
    std::thread::sleep(Duration::from_millis(150)); // worker takes it
    let fill_queue = std::net::TcpStream::connect(addr).expect("connect queue filler");
    std::thread::sleep(Duration::from_millis(150)); // acceptor enqueues it
    let mut rejected = std::net::TcpStream::connect(addr).expect("connect overflow");
    let mut inline_bytes = Vec::new();
    rejected
        .read_to_end(&mut inline_bytes)
        .expect("read inline 503 to close");
    assert_eq!(
        inline_bytes, canonical,
        "inline 503 must be byte-identical to the worker path"
    );
    assert_eq!(
        server.metrics().responses_with_status(503),
        1,
        "the inline 503 must count toward the per-status totals"
    );
    // Free the worker, then scrape: the counter renders *before* the
    // metrics response itself is written, so at that instant the inline
    // 503 is the only write the server has ever made.
    drop(claim_worker);
    drop(fill_queue);
    std::thread::sleep(Duration::from_millis(150));
    let mut scraper = HttpClient::connect(addr).expect("connect scraper");
    let metrics = scraper.get("/metrics").expect("metrics");
    let needle = format!("xmem_server_bytes_written_total {}", canonical.len());
    assert!(
        metrics.text().contains(&needle),
        "inline 503 bytes must be accounted: wanted `{needle}` in:\n{}",
        metrics.text()
    );
    let report = server.shutdown();
    assert!(report.clean);
}

/// `/healthz` and `/metrics` expose liveness and the full counter
/// surface, including the service-layer counters.
#[test]
fn health_and_metrics_expose_the_counter_surface() {
    let (server, _service) = start_server(ServerConfig::default());
    let mut client = HttpClient::connect(server.local_addr()).expect("connect");
    let health = client.get("/healthz").expect("health");
    assert_eq!(health.status, 200);
    let health_value: serde::Value = serde_json::from_str(&health.text()).expect("healthz is JSON");
    let entries = health_value.as_object().expect("healthz is an object");
    assert_eq!(
        serde::obj_get(entries, "status").and_then(serde::Value::as_str),
        Some("ok")
    );
    assert_eq!(
        serde::obj_get(entries, "version").and_then(serde::Value::as_str),
        Some(env!("CARGO_PKG_VERSION"))
    );
    assert!(
        serde::obj_get(entries, "uptime_seconds")
            .and_then(serde::Value::as_u64)
            .is_some(),
        "uptime_seconds must be a number: {}",
        health.text()
    );
    assert!(
        matches!(serde::obj_get(entries, "cluster"), Some(serde::Value::Null)),
        "single-node role is `cluster: null`: {}",
        health.text()
    );

    let estimate = client
        .post_json("/v1/estimate", &job_json(&small_spec(4)))
        .expect("estimate");
    assert_eq!(estimate.status, 200);

    let metrics = client.get("/metrics").expect("metrics");
    assert_eq!(metrics.status, 200);
    let text = metrics.text();
    for needle in [
        "xmem_server_connections_total 1",
        "xmem_http_requests_total{route=\"estimate\"} 1",
        "xmem_http_responses_total{code=\"200\"} 2",
        "xmem_http_request_duration_seconds_bucket{route=\"estimate\",le=\"+Inf\"} 1",
        "xmem_stage_cache_events_total{event=\"miss\"} 1",
        "xmem_profile_runs_total 1",
        "xmem_sim_runs_total",
        "xmem_server_draining 0",
        // Adaptive tiering families: the estimated job sits in the stage
        // cache's probation segment, and the tuner starts at the default
        // 50% split on every tier.
        "xmem_cache_entries{cache=\"stage\",segment=\"probation\"} 1",
        "xmem_cache_entries{cache=\"stage\",segment=\"protected\"} 0",
        "xmem_cache_adaptive{cache=\"stage\"} 1",
        "xmem_cache_segmented{cache=\"replay\"} 1",
        "xmem_cache_protected_frac_permille{cache=\"stage\"} 500",
        "xmem_cache_bytes_budget{cache=\"stage\"}",
        "xmem_cache_capacity{cache=\"param\"}",
        "xmem_cache_ghost_hits_total{cache=\"stage\"} 0",
        "xmem_cache_tuner_steps_total{cache=\"sim\"} 0",
        "xmem_cache_sketch_resets_total{cache=\"stage\"} 0",
        "xmem_cache_admission_denied_total{cache=\"stage\"} 0",
        // Per-stage latency histograms from the tracing layer: the
        // estimate rode the pool queue and the service call.
        "# TYPE xmem_stage_duration_seconds histogram",
        "xmem_stage_duration_seconds_bucket{stage=\"pool.queue\",le=\"+Inf\"} 1",
        "xmem_stage_duration_seconds_bucket{stage=\"service.call\",le=\"+Inf\"} 1",
        "xmem_stage_duration_seconds_count{stage=\"stage.profile\"} 1",
    ] {
        assert!(text.contains(needle), "metrics missing `{needle}`:\n{text}");
    }

    // Shutdown over the wire: the SIGTERM-equivalent for the CLI.
    let bye = client.post_json("/v1/shutdown", "{}").expect("shutdown");
    assert_eq!(bye.status, 200);
    assert!(server.is_draining());
    let report = server.wait();
    assert!(report.clean);
}

/// An expectation-honouring client sends the head with
/// `Expect: 100-continue` and then *waits* for the interim response
/// before transmitting the body. Without the interim write the exchange
/// deadlocks until the idle timeout (the bug this pins): the server sat
/// in `read` waiting for a body the client was never going to send.
#[test]
fn expect_100_continue_is_answered_before_the_body() {
    use std::io::{Read, Write};

    let (server, _service) = start_server(ServerConfig::default());
    let addr = server.local_addr();

    // Reads one `\r\n\r\n`-terminated head off the stream.
    fn read_head(stream: &mut std::net::TcpStream) -> String {
        let mut head = Vec::new();
        let mut byte = [0u8; 1];
        while !head.ends_with(b"\r\n\r\n") {
            let n = stream.read(&mut byte).expect("read head byte");
            assert!(n > 0, "connection closed mid-head: {head:?}");
            head.push(byte[0]);
        }
        String::from_utf8(head).expect("head is UTF-8")
    }

    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");

    let body = job_json(&small_spec(4));
    let head = format!(
        "POST /v1/estimate HTTP/1.1\r\ncontent-length: {}\r\nExpect: 100-Continue\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("send head");
    stream.flush().expect("flush head");

    // The interim response must arrive while the body is withheld.
    let interim = read_head(&mut stream);
    assert!(
        interim.starts_with("HTTP/1.1 100 Continue"),
        "expected an interim 100, got: {interim}"
    );

    // Now honour our side of the contract; the final response follows.
    stream.write_all(body.as_bytes()).expect("send body");
    stream.flush().expect("flush body");
    let final_head = read_head(&mut stream);
    assert!(
        final_head.starts_with("HTTP/1.1 200"),
        "expected the real answer after the body, got: {final_head}"
    );

    // Drain the final body so the keep-alive connection is reusable.
    let length: usize = final_head
        .lines()
        .find_map(|l| {
            l.to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::trim)
                .map(String::from)
        })
        .and_then(|v| v.parse().ok())
        .expect("content-length on the final response");
    let mut rest = vec![0u8; length];
    stream.read_exact(&mut rest).expect("final body");

    // The flag is one-shot: a follow-up request without `Expect` on the
    // same connection gets no spurious interim response.
    let follow_up = format!(
        "POST /v1/estimate HTTP/1.1\r\ncontent-length: {}\r\n\r\n{}",
        body.len(),
        body
    );
    stream
        .write_all(follow_up.as_bytes())
        .expect("send follow-up");
    stream.flush().expect("flush follow-up");
    let answer = read_head(&mut stream);
    assert!(
        answer.starts_with("HTTP/1.1 200"),
        "follow-up must be answered directly, got: {answer}"
    );
    drop(stream);

    let report = server.shutdown();
    assert!(report.clean);
}

/// `GET /v1/debug/traces` serves the span timelines of recent requests:
/// last-N ordering, the `?slow_ms=` filter, trace-id adoption from the
/// `x-xmem-trace-id` header, and clean 400s for malformed queries.
#[test]
fn debug_traces_expose_request_span_timelines() {
    let (server, _service) = start_server(ServerConfig::default());
    let mut client = HttpClient::connect(server.local_addr()).expect("connect");

    // A cold estimate (profile + analyze) and a warm repeat (cache hit).
    for _ in 0..2 {
        let response = client
            .post_json("/v1/estimate", &job_json(&small_spec(4)))
            .expect("estimate");
        assert_eq!(response.status, 200);
    }
    // A client-supplied trace id must be adopted verbatim.
    let pinned_id = "00000000000000000000000000abcdef";
    let pinned = client
        .request(
            "POST",
            "/v1/estimate",
            &[
                ("content-type", "application/json"),
                ("x-xmem-trace-id", pinned_id),
            ],
            job_json(&small_spec(4)).as_bytes(),
        )
        .expect("pinned-trace estimate");
    assert_eq!(pinned.status, 200);

    let traces = client.get("/v1/debug/traces?n=10").expect("traces");
    assert_eq!(traces.status, 200);
    let value: serde::Value = serde_json::from_str(&traces.text()).expect("traces JSON");
    let list = value
        .as_object()
        .and_then(|o| serde::obj_get(o, "traces"))
        .and_then(serde::Value::as_array)
        .expect("a `traces` array");
    assert!(list.len() >= 3, "three estimates ran: {}", traces.text());

    // Every trace carries the request envelope and a span timeline; the
    // cold estimate's timeline shows the pipeline stages.
    let span_names = |trace: &serde::Value| -> Vec<String> {
        trace
            .as_object()
            .and_then(|o| serde::obj_get(o, "spans"))
            .and_then(serde::Value::as_array)
            .expect("spans array")
            .iter()
            .map(|span| {
                span.as_object()
                    .and_then(|o| serde::obj_get(o, "name"))
                    .and_then(serde::Value::as_str)
                    .expect("span name")
                    .to_string()
            })
            .collect()
    };
    let estimates: Vec<&serde::Value> = list
        .iter()
        .filter(|trace| {
            trace
                .as_object()
                .and_then(|o| serde::obj_get(o, "path"))
                .and_then(serde::Value::as_str)
                == Some("/v1/estimate")
        })
        .collect();
    assert_eq!(estimates.len(), 3, "{}", traces.text());
    // Same-millisecond traces tie-break on trace id, so identify the
    // cold and warm estimates by their span content, not position.
    let cold_names = estimates
        .iter()
        .map(|trace| span_names(trace))
        .find(|names| names.iter().any(|name| name == "stage.profile"))
        .expect("one estimate ran the full pipeline");
    assert!(cold_names.len() >= 3, "cold trace spans: {cold_names:?}");
    for needle in ["pool.queue", "service.call", "stage.analyze"] {
        assert!(
            cold_names.iter().any(|name| name == needle),
            "cold trace missing `{needle}`: {cold_names:?}"
        );
    }
    // The repeats answered from the stage cache.
    let warm_hits = estimates
        .iter()
        .filter(|trace| {
            trace
                .as_object()
                .and_then(|o| serde::obj_get(o, "spans"))
                .and_then(serde::Value::as_array)
                .expect("spans array")
                .iter()
                .any(|span| {
                    let entries = span.as_object().expect("span object");
                    serde::obj_get(entries, "name").and_then(serde::Value::as_str)
                        == Some("cache.stage")
                        && serde::obj_get(entries, "outcome").and_then(serde::Value::as_str)
                            == Some("hit")
                })
        })
        .count();
    assert_eq!(
        warm_hits,
        2,
        "both repeats must show the stage-cache hit: {}",
        traces.text()
    );
    // The pinned trace id survived ingress.
    assert!(
        list.iter().any(|trace| {
            trace
                .as_object()
                .and_then(|o| serde::obj_get(o, "trace_id"))
                .and_then(serde::Value::as_str)
                == Some(pinned_id)
        }),
        "client-supplied trace id must be adopted: {}",
        traces.text()
    );

    // Nothing here is slower than ten minutes.
    let filtered = client
        .get("/v1/debug/traces?slow_ms=600000")
        .expect("filtered traces");
    assert_eq!(filtered.status, 200);
    assert_eq!(filtered.text(), "{\"traces\":[]}");
    // `?n=` caps the answer.
    let capped = client.get("/v1/debug/traces?n=1").expect("capped traces");
    let capped_value: serde::Value = serde_json::from_str(&capped.text()).expect("capped JSON");
    let capped_list = capped_value
        .as_object()
        .and_then(|o| serde::obj_get(o, "traces"))
        .and_then(serde::Value::as_array)
        .expect("capped array");
    assert_eq!(capped_list.len(), 1);
    // Malformed queries are clean 400s.
    for bad in [
        "/v1/debug/traces?n=chunky",
        "/v1/debug/traces?slow_ms=-3",
        "/v1/debug/traces?nope=1",
    ] {
        let response = client.get(bad).expect("bad-query answer");
        assert_eq!(response.status, 400, "{bad}: {}", response.text());
    }
    // Wrong method on the route is a 405 like every other route.
    let wrong = client
        .post_json("/v1/debug/traces", "{}")
        .expect("405 answer");
    assert_eq!(wrong.status, 405);

    let report = server.shutdown();
    assert!(report.clean);
}

/// Lint-style scrape of `/metrics`: every counter ends in `_total`,
/// every metric family has exactly one TYPE (and one HELP) line, no
/// series repeats, every sample value parses, every sample belongs to a
/// declared family, and label values stay within the escaped charset.
#[test]
fn prometheus_exposition_is_lint_clean() {
    let (server, _service) = start_server(ServerConfig::default());
    let mut client = HttpClient::connect(server.local_addr()).expect("connect");
    // Exercise enough routes that the families render live samples.
    for (path, body) in [
        ("/v1/estimate", job_json(&small_spec(4))),
        (
            "/v1/sweep",
            format!("{{\"job\":{},\"batches\":[2,4]}}", job_json(&small_spec(2))),
        ),
        ("/v1/estimate", "not json".to_string()),
    ] {
        let _ = client.post_json(path, &body).expect("warm-up exchange");
    }
    let _ = client.get("/healthz").expect("health");

    let metrics = client.get("/metrics").expect("metrics");
    assert_eq!(metrics.status, 200);
    let text = metrics.text();

    use std::collections::{HashMap, HashSet};
    let mut types: HashMap<String, String> = HashMap::new();
    let mut helps: HashSet<String> = HashSet::new();
    let mut series: HashSet<String> = HashSet::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().expect("HELP names a metric");
            assert!(
                helps.insert(name.to_string()),
                "duplicate HELP for `{name}`"
            );
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("TYPE names a metric").to_string();
            let kind = parts.next().expect("TYPE has a kind").to_string();
            assert!(
                matches!(kind.as_str(), "counter" | "gauge" | "histogram"),
                "unknown TYPE `{kind}` for `{name}`"
            );
            if kind == "counter" {
                assert!(
                    name.ends_with("_total"),
                    "counter `{name}` must end in `_total`"
                );
            }
            assert!(
                types.insert(name.clone(), kind).is_none(),
                "duplicate TYPE line for `{name}`"
            );
            continue;
        }
        assert!(!line.starts_with('#'), "unknown comment shape: {line}");
        // A sample: `name value` or `name{label="v",...} value`.
        let (key, value) = line.rsplit_once(' ').expect("sample has a value");
        assert!(
            value.parse::<f64>().is_ok(),
            "unparseable sample value in `{line}`"
        );
        assert!(series.insert(key.to_string()), "duplicate series `{key}`");
        let name = key.split('{').next().expect("sample has a name");
        // Histogram samples attach to their family's base name.
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suffix| {
                let base = name.strip_suffix(suffix)?;
                types.get(base).filter(|k| *k == "histogram").map(|_| base)
            })
            .unwrap_or(name);
        assert!(
            types.contains_key(family),
            "sample `{name}` has no TYPE line"
        );
        // Label values: quoted, with `\` only introducing a valid escape
        // and no raw quote/newline inside the value.
        if let Some(labels) = key
            .split_once('{')
            .map(|(_, rest)| rest.strip_suffix('}').expect("balanced label braces"))
        {
            let mut chars = labels.chars().peekable();
            while chars.peek().is_some() {
                let label_name: String = chars.by_ref().take_while(|&c| c != '=').collect();
                assert!(
                    !label_name.is_empty()
                        && label_name
                            .chars()
                            .all(|c| c.is_ascii_alphanumeric() || c == '_'),
                    "bad label name `{label_name}` in `{key}`"
                );
                assert_eq!(chars.next(), Some('"'), "label value must be quoted: {key}");
                loop {
                    match chars.next() {
                        Some('\\') => {
                            let escaped = chars.next();
                            assert!(
                                matches!(escaped, Some('\\' | '"' | 'n')),
                                "invalid escape `\\{escaped:?}` in `{key}`"
                            );
                        }
                        Some('"') => break,
                        Some(c) => assert!(c != '\n', "raw newline in label value: {key}"),
                        None => panic!("unterminated label value in `{key}`"),
                    }
                }
                match chars.next() {
                    None => break,
                    Some(',') => {}
                    Some(c) => panic!("expected `,` between labels, got `{c}` in `{key}`"),
                }
            }
        }
    }
    // Every family that declared a TYPE also rendered at least one sample
    // under HELP coverage.
    for name in types.keys() {
        assert!(helps.contains(name), "TYPE without HELP for `{name}`");
    }
    assert!(series.len() > 50, "suspiciously small exposition");

    let report = server.shutdown();
    assert!(report.clean);
}
