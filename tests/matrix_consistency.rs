//! The device-matrix differential suite: every cell of an M-jobs ×
//! D-devices matrix must be **bit-identical** to the sequential
//! single-device `Estimator`, the service counters must prove "one
//! analysis per job, one simulation per cell" (including under concurrent
//! async submission), the cache-key split must make matrix cells
//! reachable from later single-device queries, and device
//! reconfiguration must invalidate exactly one device's entries.

use std::sync::Arc;
use xmem::core::EstimateError;
use xmem::prelude::*;
use xmem::service::AsyncServiceConfig;

const DEVICES: [&str; 3] = ["rtx3060", "rtx4060", "a100"];

fn device_by_name(name: &str) -> GpuDevice {
    DeviceRegistry::builtin().get(name).expect("builtin device")
}

/// Three distinct jobs, small enough to profile quickly.
fn job_grid() -> Vec<TrainJobSpec> {
    vec![
        TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 4).with_iterations(2),
        TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 8).with_iterations(2),
        TrainJobSpec::new(ModelId::DistilGpt2, OptimizerKind::AdamW, 2).with_iterations(2),
    ]
}

/// The sequential ground truth for one cell: a fresh per-device
/// `Estimator` over a fresh profile run.
fn sequential_cell(spec: &TrainJobSpec, device_name: &str) -> Estimate {
    Estimator::new(EstimatorConfig::for_device(device_by_name(device_name)))
        .estimate_job(spec)
        .expect("sequential estimate succeeds")
}

#[test]
fn matrix_cells_are_bit_identical_to_the_sequential_estimator() {
    let jobs = job_grid();
    let service = EstimationService::for_device(GpuDevice::rtx3060());
    let matrix = service
        .estimate_matrix(&jobs, &DEVICES)
        .expect("builtin devices resolve");

    assert_eq!(matrix.devices, DEVICES);
    assert_eq!(matrix.rows.len(), jobs.len());
    assert_eq!(matrix.num_cells(), jobs.len() * DEVICES.len());
    for (row, spec) in matrix.rows.iter().zip(&jobs) {
        assert_eq!(&row.spec, spec, "rows keep the query's job order");
        for device in DEVICES {
            let cell = row.cell(device).expect("every device has a cell");
            assert_eq!(
                cell.estimate.as_ref().expect("estimation succeeds"),
                &sequential_cell(spec, device),
                "cell ({}, {device}) diverged from the sequential path",
                spec.label()
            );
        }
    }

    // The batched-replay contract, straight from the counters: one
    // profile/analyze per job, one simulation per cell.
    assert_eq!(service.profile_runs(), jobs.len() as u64);
    let sims = service.sim_stats();
    assert_eq!(sims.sim_runs, matrix.num_cells() as u64);
    assert_eq!(sims.cache.misses, matrix.num_cells() as u64);
    assert_eq!(sims.cache.insertions, matrix.num_cells() as u64);
    assert_eq!(sims.device_shards, DEVICES.len());
}

#[test]
fn repeat_matrix_and_single_device_queries_are_pure_cache_hits() {
    let jobs = job_grid();
    let service = EstimationService::for_device(GpuDevice::rtx3060());
    let first = service
        .estimate_matrix(&jobs, &DEVICES)
        .expect("devices resolve");
    let analyses = service.profile_runs();
    let sim_runs = service.sim_runs();

    // A repeated matrix re-runs nothing: every cell is a sim-shard hit.
    let second = service
        .estimate_matrix(&jobs, &DEVICES)
        .expect("devices resolve");
    assert_eq!(first, second);
    assert_eq!(service.profile_runs(), analyses);
    let sims = service.sim_stats();
    assert_eq!(sims.sim_runs, sim_runs);
    assert_eq!(sims.cache.hits, first.num_cells() as u64);

    // Cache-key split: a later *single-device* query for one cell hits
    // the device's simulation shard — no profile, no simulation.
    let single = service
        .estimate_on(&jobs[1], "rtx4060")
        .expect("estimation succeeds");
    assert_eq!(
        &single,
        first.cell(1, "rtx4060").unwrap().estimate.as_ref().unwrap()
    );
    assert_eq!(service.profile_runs(), analyses);
    let sims = service.sim_stats();
    assert_eq!(sims.sim_runs, sim_runs);
    assert_eq!(sims.cache.hits, first.num_cells() as u64 + 1);
}

#[test]
fn concurrent_matrix_and_single_device_queries_never_disagree() {
    const SINGLE_COPIES: usize = 4;

    let jobs = job_grid();
    let expected: Vec<Vec<Estimate>> = jobs
        .iter()
        .map(|spec| DEVICES.iter().map(|d| sequential_cell(spec, d)).collect())
        .collect();

    let service = AsyncEstimationService::new(
        AsyncServiceConfig::for_device(GpuDevice::rtx3060()).with_queue_depth(256),
    );
    // Two whole-matrix queries and a herd of single-device queries for
    // every cell, all in flight at once.
    let matrix_a = service.submit_matrix(&jobs, &DEVICES).expect("queue room");
    let mut singles: Vec<(usize, usize, xmem::service::EstimateFuture)> = Vec::new();
    for _ in 0..SINGLE_COPIES {
        for (j, spec) in jobs.iter().enumerate() {
            for (d, device) in DEVICES.iter().enumerate() {
                singles.push((j, d, service.submit_on(spec, device).expect("queue room")));
            }
        }
    }
    // Plain submissions against the service's own configured device must
    // agree with the matrix's rtx3060 column (the service was built with
    // the same paper-default configuration).
    let own_device: Vec<_> = jobs
        .iter()
        .map(|spec| service.submit(spec).expect("queue room"))
        .collect();
    let matrix_b = service.submit_matrix(&jobs, &DEVICES).expect("queue room");

    let matrix_a = block_on(matrix_a).expect("devices resolve");
    let matrix_b = block_on(matrix_b).expect("devices resolve");
    assert_eq!(matrix_a, matrix_b);
    for (j, row) in matrix_a.rows.iter().enumerate() {
        for (d, device) in DEVICES.iter().enumerate() {
            assert_eq!(
                row.cell(device).unwrap().estimate.as_ref().unwrap(),
                &expected[j][d],
                "concurrent matrix cell ({j}, {device}) diverged"
            );
        }
    }
    for (j, d, future) in singles {
        assert_eq!(
            &block_on(future).expect("estimation succeeds"),
            &expected[j][d],
            "concurrent single-device query ({j}, {d}) diverged"
        );
    }
    for (j, future) in own_device.into_iter().enumerate() {
        assert_eq!(
            &block_on(future).expect("estimation succeeds"),
            &expected[j][0],
            "own-device submission {j} diverged from the rtx3060 column"
        );
    }

    // Under all that concurrency, the single-flight layers still bound
    // the work exactly: one analysis per job, one simulation per cell.
    let inner = service.service();
    assert_eq!(inner.profile_runs(), jobs.len() as u64);
    assert_eq!(
        inner.sim_runs(),
        (jobs.len() * DEVICES.len()) as u64,
        "concurrent replays must coalesce onto one simulation per cell"
    );
}

#[test]
fn shared_service_front_ends_share_the_matrix_caches() {
    // One blocking service shared by an async front end: a matrix through
    // the async path leaves the blocking path fully warmed.
    let jobs = job_grid();
    let blocking = Arc::new(EstimationService::for_device(GpuDevice::rtx3060()));
    let service = AsyncEstimationService::from_service(Arc::clone(&blocking), 4, 64);
    let matrix = block_on(service.submit_matrix(&jobs, &DEVICES).expect("queue room"))
        .expect("devices resolve");
    let runs = blocking.sim_runs();
    let direct = blocking
        .estimate_on(&jobs[0], "a100")
        .expect("estimation succeeds");
    assert_eq!(
        &direct,
        matrix.cell(0, "a100").unwrap().estimate.as_ref().unwrap()
    );
    assert_eq!(blocking.sim_runs(), runs, "blocking query was a pure hit");
}

#[test]
fn device_reconfiguration_invalidates_only_that_device() {
    let registry = DeviceRegistry::empty();
    registry.register(
        "small",
        GpuDevice {
            name: "test-small",
            capacity: 4 << 30,
            framework_bytes: 512 << 20,
            init_bytes: 0,
        },
    );
    registry.register("big", GpuDevice::a100_40g());
    let jobs = job_grid();
    let service = EstimationService::new(
        ServiceConfig::for_device(GpuDevice::rtx3060()).with_registry(registry),
    );
    let matrix = service
        .estimate_matrix(&jobs, &["small", "big"])
        .expect("devices resolve");
    let analyses = service.profile_runs();
    let sim_runs = service.sim_runs();

    // Reconfigure `small` (more memory, different framework overhead).
    let replaced = service.register_device(
        "small",
        GpuDevice {
            name: "test-small",
            capacity: 8 << 30,
            framework_bytes: 600 << 20,
            init_bytes: 0,
        },
    );
    assert_eq!(replaced.expect("was registered").capacity, 4 << 30);
    assert_eq!(
        service.sim_stats().invalidated_entries,
        jobs.len() as u64,
        "exactly the replaced device's cells are dropped"
    );

    // `big` keeps its warm entries...
    let hits_before = service.sim_stats().cache.hits;
    let big = service.estimate_on(&jobs[0], "big").expect("estimates");
    assert_eq!(
        &big,
        matrix.cell(0, "big").unwrap().estimate.as_ref().unwrap()
    );
    assert_eq!(service.sim_runs(), sim_runs, "no re-simulation for `big`");
    assert_eq!(service.sim_stats().cache.hits, hits_before + 1);

    // ...while `small` re-simulates under its new configuration — without
    // re-profiling: the analysis cache is device-independent.
    let small = service.estimate_on(&jobs[0], "small").expect("estimates");
    assert_eq!(service.sim_runs(), sim_runs + 1);
    assert_eq!(service.profile_runs(), analyses, "analyses survive");
    assert_ne!(
        &small,
        matrix.cell(0, "small").unwrap().estimate.as_ref().unwrap(),
        "the new framework overhead must shift the estimate"
    );
    assert_eq!(
        small,
        sequential_cell_for(&jobs[0], service.registry().get("small").unwrap()),
        "the fresh simulation matches the sequential path for the new config"
    );
}

fn sequential_cell_for(spec: &TrainJobSpec, device: GpuDevice) -> Estimate {
    Estimator::new(EstimatorConfig::for_device(device))
        .estimate_job(spec)
        .expect("sequential estimate succeeds")
}

#[test]
fn reconfiguring_one_alias_spares_the_shard_other_names_still_own() {
    // Two registry names with an *identical* config share one simulation
    // shard; replacing one name must not evict the other's warm entries.
    let registry = DeviceRegistry::empty();
    registry.register("pool-east", GpuDevice::rtx3060());
    registry.register("pool-west", GpuDevice::rtx3060());
    let service = EstimationService::new(
        ServiceConfig::for_device(GpuDevice::rtx3060()).with_registry(registry),
    );
    let job = &job_grid()[0];
    let warm = service.estimate_on(job, "pool-west").expect("estimates");
    let sim_runs = service.sim_runs();

    service.register_device("pool-east", GpuDevice::a100_40g());
    assert_eq!(
        service.sim_stats().invalidated_entries,
        0,
        "pool-west still maps to the old config, so its shard survives"
    );
    let still_warm = service.estimate_on(job, "pool-west").expect("estimates");
    assert_eq!(warm, still_warm);
    assert_eq!(service.sim_runs(), sim_runs, "pure cache hit");
}

#[test]
fn registry_and_config_accessors_never_diverge() {
    let service = EstimationService::for_device(GpuDevice::rtx3060());
    service.register_device("lab-h100", GpuDevice::a100_40g());
    assert!(service.registry().get("lab-h100").is_some());
    assert!(
        service.config().registry.get("lab-h100").is_some(),
        "config() must see the same fleet as registry()"
    );
    assert_eq!(
        service.registry().names(),
        service.config().registry.names()
    );
}

#[test]
fn unknown_devices_fail_fast_by_name() {
    let service = EstimationService::for_device(GpuDevice::rtx3060());
    let jobs = job_grid();
    assert_eq!(
        service.estimate_matrix(&jobs, &["rtx3060", "nope"]),
        Err(EstimateError::UnknownDevice("nope".to_string()))
    );
    assert_eq!(
        service.estimate_on(&jobs[0], "phantom"),
        Err(EstimateError::UnknownDevice("phantom".to_string()))
    );
    // Failing fast means no partial work happened.
    assert_eq!(service.profile_runs(), 0);
    assert_eq!(service.sim_runs(), 0);
}

#[test]
fn degenerate_rows_fail_per_cell_without_poisoning_the_matrix() {
    let healthy =
        TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 4).with_iterations(2);
    // Zero profiled iterations: the Analyzer rejects the trace.
    let degenerate =
        TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 4).with_iterations(0);
    let service = EstimationService::for_device(GpuDevice::rtx3060());
    let matrix = service
        .estimate_matrix(&[healthy.clone(), degenerate], &["rtx3060", "rtx4060"])
        .expect("device names resolve; per-job failures stay in cells");
    for device in ["rtx3060", "rtx4060"] {
        assert!(matrix.cell(0, device).unwrap().fits());
        assert_eq!(
            matrix.cell(1, device).unwrap().estimate,
            Err(EstimateError::MissingIterations)
        );
    }
    assert_eq!(matrix.rows[1].fitting_devices(), Vec::<&str>::new());
    // The degenerate job never reached a simulation.
    assert_eq!(service.sim_runs(), 2);
}

#[test]
fn sweep_matrix_follows_the_batch_grid_and_matches_single_cells() {
    let base =
        TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 1).with_iterations(2);
    let batches = [8, 2, 4];
    let service = EstimationService::for_device(GpuDevice::rtx3060());
    let matrix = service
        .sweep_matrix(&base, &batches, &["rtx3060", "rtx4060"])
        .expect("devices resolve");
    assert_eq!(matrix.rows.len(), batches.len());
    for (row, &batch) in matrix.rows.iter().zip(&batches) {
        assert_eq!(row.spec.batch, batch, "rows keep the grid's order");
        for device in ["rtx3060", "rtx4060"] {
            assert_eq!(
                row.cell(device).unwrap().estimate.as_ref().unwrap(),
                &sequential_cell(&row.spec, device)
            );
        }
    }
    assert_eq!(service.profile_runs(), batches.len() as u64);
    assert_eq!(service.sim_runs(), (batches.len() * 2) as u64);
}

// ---------------------------------------------------------------------------
// Golden fixture: one matrix result, pinned byte-for-byte.
// ---------------------------------------------------------------------------

/// The committed fixture (see [`golden_jobs`] for the grid). The pipeline
/// is deterministic in the job key, so these numbers are contract:
/// refactors of the profiler, Analyzer, Orchestrator or allocator
/// simulation must not silently shift them. Regenerate only for a
/// *deliberate* semantic change:
///
/// ```text
/// cargo test --test matrix_consistency regenerate_matrix_golden_fixture -- --ignored
/// ```
const MATRIX_GOLDEN: &str = include_str!("fixtures/matrix_golden.json");
const MATRIX_GOLDEN_PATH: &str = "tests/fixtures/matrix_golden.json";

#[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
struct GoldenMatrix {
    devices: Vec<String>,
    rows: Vec<GoldenRow>,
}

#[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
struct GoldenRow {
    label: String,
    cells: Vec<GoldenCell>,
}

#[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
struct GoldenCell {
    peak_bytes: u64,
    job_peak_bytes: u64,
    tensor_peak_bytes: u64,
    oom: bool,
}

fn golden_jobs() -> Vec<TrainJobSpec> {
    vec![
        TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 4).with_iterations(2),
        TrainJobSpec::new(ModelId::DistilGpt2, OptimizerKind::AdamW, 2).with_iterations(2),
    ]
}

fn compute_golden_matrix() -> GoldenMatrix {
    let service = EstimationService::for_device(GpuDevice::rtx3060());
    let matrix = service
        .estimate_matrix(&golden_jobs(), &DEVICES)
        .expect("builtin devices resolve");
    GoldenMatrix {
        devices: matrix.devices.clone(),
        rows: matrix
            .rows
            .iter()
            .map(|row| GoldenRow {
                label: row.spec.label(),
                cells: row
                    .cells
                    .iter()
                    .map(|cell| {
                        let e = cell.estimate.as_ref().expect("golden jobs estimate");
                        GoldenCell {
                            peak_bytes: e.peak_bytes,
                            job_peak_bytes: e.job_peak_bytes,
                            tensor_peak_bytes: e.tensor_peak_bytes,
                            oom: e.oom_predicted,
                        }
                    })
                    .collect(),
            })
            .collect(),
    }
}

#[test]
fn matrix_result_matches_the_golden_fixture() {
    let golden: GoldenMatrix = serde_json::from_str(MATRIX_GOLDEN).expect("fixture parses");
    assert_eq!(
        compute_golden_matrix(),
        golden,
        "matrix estimates drifted from the committed fixture; regenerate \
         only for a deliberate semantic change (see MATRIX_GOLDEN docs)"
    );
}

/// Writes the fixture. Ignored: run explicitly to capture a deliberate
/// semantic change.
#[test]
#[ignore = "regenerates the committed fixture"]
fn regenerate_matrix_golden_fixture() {
    let json = serde_json::to_string(&compute_golden_matrix()).expect("serialize");
    std::fs::write(MATRIX_GOLDEN_PATH, json).expect("write fixture");
}

#[test]
fn best_device_is_the_smallest_fitting_one() {
    let service = EstimationService::for_device(GpuDevice::rtx3060());
    // A small CNN fits everything; best fit is the 8 GiB card.
    let small =
        TrainJobSpec::new(ModelId::MobileNetV3Small, OptimizerKind::Adam, 8).with_iterations(2);
    let placement = service
        .best_device_for_job(&small)
        .expect("estimation succeeds")
        .expect("a device fits");
    assert_eq!(placement.device, "rtx4060");
    assert!(!placement.estimate.oom_predicted);
    assert_eq!(
        placement.estimate,
        sequential_cell(&small, "rtx4060"),
        "the justifying estimate is the device's own cell"
    );

    // Pythia-1B + AdamW needs ~16 GiB for params+grads+state alone: only
    // the A100 can hold it.
    let heavy = TrainJobSpec::new(ModelId::Pythia1B, OptimizerKind::AdamW, 2).with_iterations(2);
    let placement = service
        .best_device_for_job(&heavy)
        .expect("estimation succeeds")
        .expect("the A100 fits");
    assert_eq!(placement.device, "a100");

    // A fleet of one tiny device fits nothing.
    let tiny = DeviceRegistry::empty();
    tiny.register(
        "tiny",
        GpuDevice {
            name: "test-tiny",
            capacity: 1 << 30,
            framework_bytes: 512 << 20,
            init_bytes: 0,
        },
    );
    let cramped =
        EstimationService::new(ServiceConfig::for_device(GpuDevice::rtx3060()).with_registry(tiny));
    let heavy_for_tiny =
        TrainJobSpec::new(ModelId::DistilGpt2, OptimizerKind::AdamW, 8).with_iterations(2);
    assert_eq!(
        cramped
            .best_device_for_job(&heavy_for_tiny)
            .expect("estimation succeeds"),
        None
    );
}
