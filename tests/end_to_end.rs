//! End-to-end integration: CPU profile → estimate → ground truth, across
//! model classes, optimizers and devices.

use xmem::prelude::*;

fn relative_error(spec: &TrainJobSpec, device: GpuDevice) -> f64 {
    let estimator = Estimator::new(EstimatorConfig::for_device(device));
    let est = estimator.estimate_job(spec).expect("estimation succeeds");
    let gt = run_on_gpu(spec, &device, None, false);
    assert!(!gt.oom, "config must fit for accuracy measurement");
    (est.peak_bytes as f64 - gt.peak_nvml as f64).abs() / gt.peak_nvml as f64
}

#[test]
fn cnn_estimates_are_within_ten_percent() {
    let device = GpuDevice::rtx3060();
    for (model, opt, batch) in [
        (ModelId::ResNet101, OptimizerKind::Adam, 300),
        (ModelId::Vgg16, OptimizerKind::Sgd { momentum: true }, 200),
        (ModelId::MobileNetV2, OptimizerKind::RMSprop, 400),
        (ModelId::ConvNextBase, OptimizerKind::Adagrad, 200),
    ] {
        let spec = TrainJobSpec::new(model, opt, batch);
        let err = relative_error(&spec, device);
        assert!(err < 0.10, "{}: error {err:.3}", spec.label());
    }
}

#[test]
fn transformer_estimates_are_within_ten_percent() {
    let device = GpuDevice::rtx3060();
    for (model, opt, batch) in [
        (ModelId::Gpt2, OptimizerKind::AdamW, 20),
        (ModelId::T5Base, OptimizerKind::Adafactor, 15),
        (ModelId::Opt125M, OptimizerKind::Adam, 25),
        (ModelId::Pythia1B, OptimizerKind::Sgd { momentum: false }, 4),
    ] {
        let spec = TrainJobSpec::new(model, opt, batch);
        let err = relative_error(&spec, device);
        assert!(err < 0.10, "{}: error {err:.3}", spec.label());
    }
}

#[test]
fn large_models_estimate_accurately_on_a100() {
    // The RQ5 scenario: models that cannot fit commodity GPUs are profiled
    // on the CPU and estimated for an A100.
    let device = GpuDevice::a100_40g();
    for model in [ModelId::Llama32_3B, ModelId::DeepSeekR1Distill1_5B] {
        let spec = TrainJobSpec::new(model, OptimizerKind::Adafactor, 1);
        let err = relative_error(&spec, device);
        assert!(err < 0.12, "{model}: error {err:.3}");
    }
}

#[test]
fn oom_predictions_match_reality_across_the_boundary() {
    // Sweep GPT-2/AdamW batches across the 12 GiB boundary; the predicted
    // and actual OOM verdicts must agree at every probed point except at
    // most one boundary batch (where jitter decides).
    let device = GpuDevice::rtx3060();
    let estimator = Estimator::new(EstimatorConfig::for_device(device));
    let mut disagreements = 0;
    for batch in [8, 24, 40, 56, 72, 88] {
        let spec = TrainJobSpec::new(ModelId::Gpt2, OptimizerKind::AdamW, batch);
        let est = estimator.estimate_job(&spec).expect("estimation succeeds");
        let gt = run_on_gpu(&spec, &device, None, false);
        if est.oom_predicted != gt.oom {
            disagreements += 1;
        }
    }
    assert!(disagreements <= 1, "{disagreements} OOM disagreements");
}

#[test]
fn fp16_jobs_estimate_accurately() {
    // Paper §6.3: once profiling data exists, the pipeline is
    // precision-agnostic.
    let device = GpuDevice::rtx3060();
    let spec = TrainJobSpec::new(ModelId::Gpt2, OptimizerKind::Adam, 16)
        .with_precision(xmem::runtime::Precision::F16);
    let err = relative_error(&spec, device);
    assert!(err < 0.10, "fp16 error {err:.3}");
}

#[test]
fn estimation_is_deterministic() {
    let spec = TrainJobSpec::new(ModelId::DistilGpt2, OptimizerKind::Adam, 8).with_seed(9);
    let estimator = Estimator::new(EstimatorConfig::for_device(GpuDevice::rtx4060()));
    let a = estimator.estimate_job(&spec).expect("estimation succeeds");
    let b = estimator.estimate_job(&spec).expect("estimation succeeds");
    assert_eq!(a.peak_bytes, b.peak_bytes);
    assert_eq!(a.job_peak_bytes, b.job_peak_bytes);
    assert_eq!(a.stats, b.stats);
}

#[test]
fn estimates_transfer_across_devices() {
    // One CPU profile serves estimation for any target device; the
    // job-only peak must match, only capacity/overhead context changes.
    let spec = TrainJobSpec::new(ModelId::MobileNetV3Large, OptimizerKind::Adam, 64);
    let trace = profile_on_cpu(&spec);
    let on_3060 = Estimator::new(EstimatorConfig::for_device(GpuDevice::rtx3060()))
        .estimate_trace(&trace)
        .expect("estimation succeeds");
    let on_4060 = Estimator::new(EstimatorConfig::for_device(GpuDevice::rtx4060()))
        .estimate_trace(&trace)
        .expect("estimation succeeds");
    assert_eq!(on_3060.job_peak_bytes, on_4060.job_peak_bytes);
    assert!(on_3060.peak_bytes != on_4060.peak_bytes);
}
