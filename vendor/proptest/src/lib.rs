//! Vendored stub of the `proptest` surface this workspace uses.
//!
//! Provides the `proptest!` test macro, `prop_assert*!` assertions,
//! `prop_oneof!`, `any::<T>()`, integer-range and tuple strategies,
//! `Strategy::prop_map`, and `collection::vec`. Case generation is
//! deterministic: the RNG seed derives from the test name, so failures
//! reproduce run to run. Failing cases are reported with their inputs but
//! are not shrunk.

#![forbid(unsafe_code)]

use std::fmt;

pub mod test_runner {
    use std::fmt;

    /// Test-case failure carrying the assertion message.
    #[derive(Debug)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        /// A failure with the given message.
        #[must_use]
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError { msg: msg.into() }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.msg)
        }
    }

    /// Harness configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of randomized cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic case RNG (SplitMix64 seeded from the test name).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// An RNG whose stream is a pure function of `name`.
        #[must_use]
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[lo, hi]` (inclusive).
        pub fn in_range(&mut self, lo: i128, hi: i128) -> i128 {
            debug_assert!(lo <= hi);
            let span = (hi - lo + 1) as u128;
            lo + (u128::from(self.next_u64()) % span) as i128
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::fmt;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A generator of random values.
    pub trait Strategy {
        /// The generated type.
        type Value: fmt::Debug;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: fmt::Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// [`Strategy::prop_map`] adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: fmt::Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    rng.in_range(self.start as i128, self.end as i128 - 1) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The `any::<T>()` strategy for types with a full-domain distribution.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T> {
        _marker: PhantomData<T>,
    }

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any {
                _marker: PhantomData,
            }
        }
    }

    macro_rules! impl_any_uint {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_any_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+),)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A: 0, B: 1),
        (A: 0, B: 1, C: 2),
        (A: 0, B: 1, C: 2, D: 3),
    }

    /// Boxed generation function used by [`Union`] arms.
    pub type ArmFn<V> = Box<dyn Fn(&mut TestRng) -> V>;

    /// Weighted choice between heterogeneous strategies (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<(u32, ArmFn<V>)>,
        total: u64,
    }

    impl<V> Union<V> {
        /// Builds a union; weights must not all be zero.
        #[must_use]
        pub fn new(arms: Vec<(u32, ArmFn<V>)>) -> Self {
            let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof!: all weights are zero");
            Union { arms, total }
        }
    }

    impl<V: fmt::Debug> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.next_u64() % self.total;
            for (w, f) in &self.arms {
                let w = u64::from(*w);
                if pick < w {
                    return f(rng);
                }
                pick -= w;
            }
            unreachable!("weights cover the sample space")
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from `len` and elements from
    /// `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec(element, 1..100)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.in_range(self.len.start as i128, self.len.end as i128 - 1) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Marker trait backing [`any`].
pub trait Arbitrary: Sized + fmt::Debug
where
    strategy::Any<Self>: strategy::Strategy,
{
}

impl<T: Sized + fmt::Debug> Arbitrary for T where strategy::Any<T>: strategy::Strategy {}

/// The `any::<T>()` entry point.
#[must_use]
pub fn any<T: Arbitrary>() -> strategy::Any<T>
where
    strategy::Any<T>: strategy::Strategy,
{
    strategy::Any::default()
}

/// The main property-test macro.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for case in 0..cfg.cases {
                $(
                    let $arg = {
                        let strat = $strat;
                        $crate::strategy::Strategy::generate(&strat, &mut rng)
                    };
                )+
                let mut run = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                if let ::std::result::Result::Err(e) = run() {
                    ::std::panic!(
                        "proptest case {}/{} failed: {}\ninputs: {:#?}",
                        case + 1,
                        cfg.cases,
                        e,
                        ($(&$arg,)+)
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Weighted strategy choice.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {{
        $crate::strategy::Union::new(vec![
            $(
                ($weight as u32, {
                    let strat = $strat;
                    ::std::boxed::Box::new(move |rng: &mut $crate::test_runner::TestRng| {
                        $crate::strategy::Strategy::generate(&strat, rng)
                    }) as $crate::strategy::ArmFn<_>
                }),
            )+
        ])
    }};
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Asserts a condition inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Asserts inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// The usual glob import.
pub mod prelude {
    pub use crate::any;
    pub use crate::collection;
    pub use crate::strategy::{Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirror: `prop::collection::vec(...)`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}
