//! Vendored stub of `serde`'s public surface.
//!
//! Instead of serde's visitor-based data model, `Serialize`/`Deserialize`
//! convert through an owned [`Value`] tree; `serde_json` (also vendored)
//! renders and parses that tree. The encoding conventions follow serde's
//! defaults — objects for structs, strings for unit enum variants,
//! externally tagged payload variants, newtype structs as their inner
//! value — so documents are interchangeable with the real crates.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The intermediate data model all (de)serialization goes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative or in-range signed integer.
    I64(i64),
    /// Non-negative integer.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion-ordered so output is deterministic.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Whether this value is `Null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The object entries, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Interprets an externally-tagged enum payload: a single-entry object.
    #[must_use]
    pub fn as_enum(&self) -> Option<(&str, &Value)> {
        match self {
            Value::Object(entries) if entries.len() == 1 => {
                Some((entries[0].0.as_str(), &entries[0].1))
            }
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(text) => Some(text),
            _ => None,
        }
    }

    /// Unsigned view of a numeric value.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(x) => Some(x),
            Value::I64(x) if x >= 0 => Some(x as u64),
            _ => None,
        }
    }

    /// Signed view of a numeric value.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(x) => Some(x),
            Value::U64(x) => i64::try_from(x).ok(),
            _ => None,
        }
    }

    /// Floating-point view of a numeric value.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(x) => Some(x),
            Value::I64(x) => Some(x as f64),
            Value::U64(x) => Some(x as f64),
            _ => None,
        }
    }
}

/// Looks up a key in object entries (first match wins).
#[must_use]
pub fn obj_get<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// (De)serialization failure.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error with a caller-provided message.
    #[must_use]
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }

    /// A type-mismatch error.
    #[must_use]
    pub fn expected(what: &str, ty: &str) -> Self {
        Error {
            msg: format!("expected {what} while deserializing {ty}"),
        }
    }

    /// A missing-field error.
    #[must_use]
    pub fn missing_field(ty: &str, field: &str) -> Self {
        Error {
            msg: format!("missing field `{field}` while deserializing {ty}"),
        }
    }

    /// An unknown-enum-variant error.
    #[must_use]
    pub fn unknown_variant(ty: &str, variant: &str) -> Self {
        Error {
            msg: format!("unknown variant `{variant}` of {ty}"),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A type that can render itself into the [`Value`] model.
pub trait Serialize {
    /// Converts to the intermediate value tree.
    fn to_value(&self) -> Value;
}

/// A type that can reconstruct itself from the [`Value`] model.
pub trait Deserialize: Sized {
    /// Converts from the intermediate value tree.
    ///
    /// # Errors
    /// Returns an [`Error`] on shape or type mismatches.
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// The value to use when a field is absent; `Option<T>` yields
    /// `Some(None)` (serde treats missing `Option` fields as `None`).
    fn missing_value() -> Option<Self> {
        None
    }
}

/// Derive-macro helper: the value for an absent field, or a missing-field
/// error for types without an absent representation.
///
/// # Errors
/// Returns [`Error::missing_field`] when `T` has no absent representation.
pub fn missing_or_err<T: Deserialize>(ty: &str, field: &str) -> Result<T, Error> {
    T::missing_value().ok_or_else(|| Error::missing_field(ty, field))
}

// ---------------------------------------------------------------------------
// Std impls
// ---------------------------------------------------------------------------

// `Value` is its own intermediate representation (mirroring the real
// `serde_json::Value`'s self-(de)serialization), so callers can parse a
// document into the dynamic tree and inspect it without a typed schema.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(u64::from(*self)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let x = v.as_u64().ok_or_else(|| Error::expected("unsigned integer", stringify!($t)))?;
                <$t>::try_from(x).map_err(|_| Error::expected("in-range integer", stringify!($t)))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}
impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let x = v
            .as_u64()
            .ok_or_else(|| Error::expected("unsigned integer", "usize"))?;
        usize::try_from(x).map_err(|_| Error::expected("in-range integer", "usize"))
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = i64::from(*self);
                if x >= 0 { Value::U64(x as u64) } else { Value::I64(x) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let x = v.as_i64().ok_or_else(|| Error::expected("integer", stringify!($t)))?;
                <$t>::try_from(x).map_err(|_| Error::expected("in-range integer", stringify!($t)))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}
impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let x = v
            .as_i64()
            .ok_or_else(|| Error::expected("integer", "isize"))?;
        isize::try_from(x).map_err(|_| Error::expected("in-range integer", "isize"))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::expected("number", "f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_f64().ok_or_else(|| Error::expected("number", "f32"))? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("boolean", "bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::expected("string", "String")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }

    fn missing_value() -> Option<Self> {
        Some(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::expected("array", "Vec"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

/// Map keys, which JSON requires to be strings (integer keys are
/// stringified, matching `serde_json`).
pub trait MapKey: Sized {
    /// Renders the key as a JSON object key.
    fn to_key(&self) -> String;

    /// Parses the key back from a JSON object key.
    ///
    /// # Errors
    /// Returns an [`Error`] when the string is not a valid key.
    fn from_key(s: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }

    fn from_key(s: &str) -> Result<Self, Error> {
        Ok(s.to_string())
    }
}

macro_rules! impl_map_key_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }

            fn from_key(s: &str) -> Result<Self, Error> {
                s.parse().map_err(|_| Error::expected("integer key", stringify!($t)))
            }
        }
    )*};
}
impl_map_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}
impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::expected("object", "BTreeMap"))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: MapKey + Eq + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}
impl<K: MapKey + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::expected("object", "HashMap"))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+),)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let arr = v.as_array().ok_or_else(|| Error::expected("array", "tuple"))?;
                let expected = [$($idx),+].len();
                if arr.len() != expected {
                    return Err(Error::expected("tuple-length array", "tuple"));
                }
                Ok(($($name::from_value(&arr[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
}
