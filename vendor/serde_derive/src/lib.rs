//! Hand-rolled `Serialize`/`Deserialize` derive macros.
//!
//! The build environment has no crates.io access, so this proc-macro crate
//! parses the item token stream directly (no `syn`/`quote`) and emits impls
//! of the simplified `serde` traits defined in `vendor/serde`. Supported
//! shapes: named-field structs, tuple structs, and enums with unit, tuple
//! and struct variants. Supported field attributes: `#[serde(rename =
//! "...")]`, `#[serde(default)]`, `#[serde(skip_serializing_if = "path")]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Default, Clone)]
struct SerdeAttrs {
    rename: Option<String>,
    default: bool,
    skip_if: Option<String>,
}

struct Field {
    name: String,
    attrs: SerdeAttrs,
}

enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum ItemKind {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    kind: ItemKind,
}

/// Derives the simplified `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated impl parses")
}

/// Derives the simplified `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(ts: TokenStream) -> Item {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0;
    parse_attrs(&toks, &mut i);
    skip_vis(&toks, &mut i);
    let kw = expect_ident(&toks, &mut i);
    let name = expect_ident(&toks, &mut i);
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive stub: generic type `{name}` is not supported");
        }
    }
    let kind = match kw.as_str() {
        "struct" => ItemKind::Struct(match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        }),
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Enum(parse_variants(g.stream()))
            }
            _ => panic!("serde_derive stub: malformed enum `{name}`"),
        },
        other => panic!("serde_derive stub: cannot derive for `{other}` items"),
    };
    Item { name, kind }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        let attrs = parse_attrs(&toks, &mut i);
        skip_vis(&toks, &mut i);
        let name = expect_ident(&toks, &mut i);
        expect_punct(&toks, &mut i, ':');
        skip_type_until_comma(&toks, &mut i);
        fields.push(Field { name, attrs });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut i = 0;
    let mut count = 0;
    while i < toks.len() {
        parse_attrs(&toks, &mut i);
        skip_vis(&toks, &mut i);
        skip_type_until_comma(&toks, &mut i);
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        parse_attrs(&toks, &mut i);
        let name = expect_ident(&toks, &mut i);
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant, then the trailing comma.
        while i < toks.len() {
            if let TokenTree::Punct(p) = &toks[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

/// Consumes leading `#[...]` attributes, collecting `#[serde(...)]` keys.
fn parse_attrs(toks: &[TokenTree], i: &mut usize) -> SerdeAttrs {
    let mut attrs = SerdeAttrs::default();
    loop {
        let Some(TokenTree::Punct(p)) = toks.get(*i) else {
            return attrs;
        };
        if p.as_char() != '#' {
            return attrs;
        }
        let Some(TokenTree::Group(g)) = toks.get(*i + 1) else {
            return attrs;
        };
        if g.delimiter() != Delimiter::Bracket {
            return attrs;
        }
        merge_serde_attr(g.stream(), &mut attrs);
        *i += 2;
    }
}

fn merge_serde_attr(stream: TokenStream, attrs: &mut SerdeAttrs) {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    match (toks.first(), toks.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g)))
            if id.to_string() == "serde" && g.delimiter() == Delimiter::Parenthesis =>
        {
            parse_serde_items(g.stream(), attrs);
        }
        _ => {}
    }
}

fn parse_serde_items(stream: TokenStream, attrs: &mut SerdeAttrs) {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    while i < toks.len() {
        let key = expect_ident(&toks, &mut i);
        let value = match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                i += 1;
                match toks.get(i) {
                    Some(TokenTree::Literal(lit)) => {
                        i += 1;
                        Some(unquote(&lit.to_string()))
                    }
                    _ => panic!("serde_derive stub: expected string after `{key} =`"),
                }
            }
            _ => None,
        };
        match (key.as_str(), value) {
            ("rename", Some(v)) => attrs.rename = Some(v),
            ("default", None) => attrs.default = true,
            ("skip_serializing_if", Some(v)) => attrs.skip_if = Some(v),
            (other, _) => panic!("serde_derive stub: unsupported serde attribute `{other}`"),
        }
        if let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
}

fn unquote(lit: &str) -> String {
    lit.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .unwrap_or_else(|| panic!("serde_derive stub: expected string literal, got {lit}"))
        .to_string()
}

fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = toks.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Skips a type, stopping after the comma that ends the field (or at end of
/// input). Tracks `<`/`>` depth so commas inside generics don't terminate.
fn skip_type_until_comma(toks: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while *i < toks.len() {
        if let TokenTree::Punct(p) = &toks[*i] {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn expect_ident(toks: &[TokenTree], i: &mut usize) -> String {
    match toks.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde_derive stub: expected identifier, got {other:?}"),
    }
}

fn expect_punct(toks: &[TokenTree], i: &mut usize, ch: char) {
    match toks.get(*i) {
        Some(TokenTree::Punct(p)) if p.as_char() == ch => *i += 1,
        other => panic!("serde_derive stub: expected `{ch}`, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Codegen: Serialize
// ---------------------------------------------------------------------------

fn key_of(f: &Field) -> String {
    f.attrs.rename.clone().unwrap_or_else(|| f.name.clone())
}

/// Statements that build a `fields` vec for a set of named fields; the
/// caller wraps `fields` in the appropriate `Value`.
fn ser_named_fields(fields: &[Field], accessor: impl Fn(&str) -> String) -> String {
    let mut out = String::from(
        "let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
         ::std::vec::Vec::new();",
    );
    for f in fields {
        let key = key_of(f);
        let access = accessor(&f.name);
        let push =
            format!("fields.push(({key:?}.to_string(), ::serde::Serialize::to_value({access})));");
        if let Some(pred) = &f.attrs.skip_if {
            out.push_str(&format!("if !{pred}({access}) {{ {push} }}"));
        } else {
            out.push_str(&push);
        }
    }
    out
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(Fields::Named(fields)) => {
            format!(
                "{{ {} ::serde::Value::Object(fields) }}",
                ser_named_fields(fields, |f| format!("&self.{f}"))
            )
        }
        ItemKind::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        ItemKind::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(","))
        }
        ItemKind::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        ItemKind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::Str({vname:?}.to_string()),"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(","))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Value::Object(vec![({vname:?}\
                             .to_string(), {payload})]),",
                            binds.join(",")
                        ));
                    }
                    Fields::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let payload = ser_named_fields(fields, |f| f.to_string());
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{ {payload} \
                             ::serde::Value::Object(vec![({vname:?}.to_string(), \
                             ::serde::Value::Object(fields))]) }},",
                            binds.join(",")
                        ));
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{ \
           fn to_value(&self) -> ::serde::Value {{ {body} }} \
         }}"
    )
}

// ---------------------------------------------------------------------------
// Codegen: Deserialize
// ---------------------------------------------------------------------------

fn de_named_field(item: &str, f: &Field) -> String {
    let key = key_of(f);
    if f.attrs.default {
        format!(
            "{}: match ::serde::obj_get(obj, {key:?}) {{ \
               ::std::option::Option::Some(v) if !v.is_null() => \
                 ::serde::Deserialize::from_value(v)?, \
               _ => ::std::default::Default::default() }},",
            f.name
        )
    } else {
        format!(
            "{}: match ::serde::obj_get(obj, {key:?}) {{ \
               ::std::option::Option::Some(v) => ::serde::Deserialize::from_value(v)?, \
               ::std::option::Option::None => ::serde::missing_or_err({item:?}, {key:?})? }},",
            f.name
        )
    }
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(Fields::Named(fields)) => {
            let inits: String = fields.iter().map(|f| de_named_field(name, f)).collect();
            format!(
                "let obj = v.as_object().ok_or_else(|| \
                   ::serde::Error::expected(\"object\", {name:?}))?; \
                 ::std::result::Result::Ok({name} {{ {inits} }})"
            )
        }
        ItemKind::Struct(Fields::Tuple(1)) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        ItemKind::Struct(Fields::Tuple(n)) => {
            let inits: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(&arr[{k}])?"))
                .collect();
            format!(
                "let arr = v.as_array().ok_or_else(|| \
                   ::serde::Error::expected(\"array\", {name:?}))?; \
                 if arr.len() != {n} {{ return ::std::result::Result::Err(\
                   ::serde::Error::expected(\"array of length {n}\", {name:?})); }} \
                 ::std::result::Result::Ok({name}({}))",
                inits.join(",")
            )
        }
        ItemKind::Struct(Fields::Unit) => {
            format!("::std::result::Result::Ok({name})")
        }
        ItemKind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for var in variants {
                let vname = &var.name;
                match &var.fields {
                    Fields::Unit => unit_arms.push_str(&format!(
                        "{vname:?} => ::std::result::Result::Ok({name}::{vname}),"
                    )),
                    Fields::Tuple(1) => payload_arms.push_str(&format!(
                        "{vname:?} => ::std::result::Result::Ok({name}::{vname}(\
                           ::serde::Deserialize::from_value(payload)?)),"
                    )),
                    Fields::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_value(&arr[{k}])?"))
                            .collect();
                        payload_arms.push_str(&format!(
                            "{vname:?} => {{ let arr = payload.as_array().ok_or_else(|| \
                               ::serde::Error::expected(\"array\", {name:?}))?; \
                             if arr.len() != {n} {{ return ::std::result::Result::Err(\
                               ::serde::Error::expected(\"array of length {n}\", {name:?})); }} \
                             ::std::result::Result::Ok({name}::{vname}({})) }},",
                            inits.join(",")
                        ));
                    }
                    Fields::Named(fields) => {
                        let inits: String =
                            fields.iter().map(|f| de_named_field(name, f)).collect();
                        payload_arms.push_str(&format!(
                            "{vname:?} => {{ let obj = payload.as_object().ok_or_else(|| \
                               ::serde::Error::expected(\"object\", {name:?}))?; \
                             ::std::result::Result::Ok({name}::{vname} {{ {inits} }}) }},"
                        ));
                    }
                }
            }
            format!(
                "match v {{ \
                   ::serde::Value::Str(s) => match s.as_str() {{ \
                     {unit_arms} \
                     other => ::std::result::Result::Err(\
                       ::serde::Error::unknown_variant({name:?}, other)), \
                   }}, \
                   _ => {{ \
                     let (tag, payload) = v.as_enum().ok_or_else(|| \
                       ::serde::Error::expected(\"enum\", {name:?}))?; \
                     match tag {{ \
                       {payload_arms} \
                       other => ::std::result::Result::Err(\
                         ::serde::Error::unknown_variant({name:?}, other)), \
                     }} \
                   }} \
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{ \
           fn from_value(v: &::serde::Value) -> \
             ::std::result::Result<Self, ::serde::Error> {{ {body} }} \
         }}"
    )
}
