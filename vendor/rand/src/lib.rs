//! Vendored stub of the `rand` surface this workspace uses: a
//! SplitMix64-backed [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer ranges, [`Rng::gen_bool`], and
//! [`seq::SliceRandom::choose`]. Deterministic in the seed, which is all
//! the workspace requires (run-to-run jitter and campaign sampling).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from an integer range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli sample with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 high bits give a uniform float in [0, 1).
        let x = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        x < p
    }
}

impl<R: RngCore> Rng for R {}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

fn sample_span<R: RngCore>(rng: &mut R, lo: i128, hi_inclusive: i128) -> i128 {
    debug_assert!(lo <= hi_inclusive);
    let span = (hi_inclusive - lo + 1) as u128;
    // Modulo bias is negligible for the spans this workspace samples.
    lo + (u128::from(rng.next_u64()) % span) as i128
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                sample_span(rng, self.start as i128, self.end as i128 - 1) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                sample_span(rng, lo as i128, hi as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: SplitMix64 — statistically solid for
    /// simulation workloads and deterministic in the seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Slice sampling helpers.
pub mod seq {
    use super::Rng;

    /// Random selection from slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, or `None` for an empty slice.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() % self.len() as u64) as usize;
                Some(&self[i])
            }
        }
    }
}
