//! Vendored stub of `serde_json`: a complete JSON writer and parser over
//! the vendored `serde` crate's [`Value`] model.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Serialization or parse failure.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes a value to a compact JSON string.
///
/// # Errors
/// Never fails for the vendored value model; the `Result` mirrors the real
/// crate's signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Parses a value from a JSON string.
///
/// # Errors
/// Returns an [`Error`] for malformed documents or shape mismatches.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `{:?}` is the shortest round-trippable form and always
                // includes a `.` or exponent for non-integral parsing.
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(v, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(Error::new(format!(
                "unexpected input at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by the writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(Error::new("unknown escape")),
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(x) = text.parse::<i64>() {
                    return Ok(Value::I64(x));
                }
            } else if let Ok(x) = text.parse::<u64>() {
                return Ok(Value::U64(x));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}
