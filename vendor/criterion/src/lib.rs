//! Vendored stub of the `criterion` surface this workspace's benches use:
//! [`Criterion::bench_function`], benchmark groups with
//! [`BenchmarkGroup::bench_with_input`] and throughput annotation,
//! [`Bencher::iter`], [`black_box`], and the `criterion_group!` /
//! `criterion_main!` macros. Each benchmark runs a short warmup followed by
//! a fixed measurement window and prints mean wall-clock time per
//! iteration; there is no statistical analysis or HTML report.

#![forbid(unsafe_code)]

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation attached to a group (recorded, printed alongside).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    #[must_use]
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only id (the group name provides the prefix).
    #[must_use]
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing loop driver passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the measurement window, recording total elapsed time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup.
        black_box(f());
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(f());
            iters += 1;
            if start.elapsed() > Duration::from_millis(300) || iters >= 1000 {
                break;
            }
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }
}

fn report(label: &str, b: &Bencher, throughput: Option<Throughput>) {
    if b.iters == 0 {
        println!("{label:<50} (no measurement)");
        return;
    }
    let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("  {:.0} elem/s", n as f64 / per_iter),
        Throughput::Bytes(n) => {
            format!("  {:.1} MiB/s", n as f64 / per_iter / (1024.0 * 1024.0))
        }
    });
    println!(
        "{label:<50} {:>12.3} us/iter ({} iters){}",
        per_iter * 1e6,
        b.iters,
        rate.unwrap_or_default()
    );
}

/// Benchmark registry and runner.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single benchmark function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(id, &b, None);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b, self.throughput);
        self
    }

    /// Runs an unparameterized benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(&format!("{}/{id}", self.name), &b, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
